/// \file oocore_microbench.cpp
/// \brief Async segment pipeline vs the PR 5 synchronous mmap disk path.
///
/// The acceptance measurement for DESIGN.md §11: stream one rank's
/// disk-resident slice through a full read-compute-writeback sweep three
/// ways, emitted as JSON for EXPERIMENTS.md (same schema family as
/// stage_sweep_microbench: best/mean/stddev seconds + speedup +
/// meets_*x):
///   1. "sync_mmap": the kDisk mmap path — compute over the mapped slice,
///      then flush_and_evict() (msync + page-cache drop), so every rep
///      faults cold from the device (rank_storage.hpp documents this as
///      the honest cold-sweep protocol; PR 5 measured the synchronous
///      disk path at 0.13 GB/s).
///   2. "pipelined_raw": the SegmentPipeline with the identity codec —
///      any gain over (1) is overlap alone, the >= 2x acceptance bar.
///   3. "pipelined_lz" / "pipelined_fp32lz": same sweep with the shard
///      codecs; compression ratio and effective throughput are reported
///      separately (random amplitudes are nearly incompressible for the
///      lossless byte-plane LZ, while fp32 truncation halves the frame).
///
/// Effective throughput counts RAW bytes moved (slice read + slice
/// written back per sweep) over wall time, so a codec's ratio multiplies
/// the reported GB/s exactly as the perfmodel predicts. The model's
/// max(compute, io) prediction is printed next to every measured sweep.
/// Overrides: QUASAR_OOC_BENCH_QUBITS (default 24, the slice exponent),
/// QUASAR_OOC_BENCH_REPS (default 3), QUASAR_OOC_BENCH_SEGMENT_KB
/// (default 512), QUASAR_OOC_BENCH_IO_THREADS (default 4),
/// QUASAR_OOC_BENCH_DEPTH (default 4), QUASAR_OOC_BENCH_GATES (default 3,
/// the per-segment gate-run length), QUASAR_STORAGE_DIR (default /tmp).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/bits.hpp"
#include "core/timing.hpp"
#include "kernels/apply.hpp"
#include "oocore/pipeline.hpp"
#include "oocore/segment_store.hpp"
#include "perfmodel/oocore_model.hpp"
#include "runtime/rank_storage.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

void fill_random(Amplitude* data, Index count, std::uint64_t seed) {
  Rng rng(seed);
  for (Index i = 0; i < count; ++i) {
    data[i] = Amplitude{rng.normal(), rng.normal()};
  }
}

struct SweepResult {
  TimingStats timing;
  double ratio = 1.0;           ///< raw bytes / disk bytes (1.0 for mmap)
  double stall_fraction = 0.0;  ///< pipeline stall / sweep wall time
};

/// RAW GB/s of a full sweep: slice read + slice written back.
double effective_gbs(std::size_t slice_bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(slice_bytes) / seconds * 1e-9;
}

void print_sweep(const char* name, const SweepResult& r,
                 std::size_t slice_bytes, double model_seconds,
                 double sync_best, bool is_acceptance, bool last) {
  const double speedup =
      r.timing.best > 0.0 ? sync_best / r.timing.best : 0.0;
  std::printf("  \"%s\": {\n", name);
  print_timing_json("sweep", r.timing);
  std::printf("    \"effective_gbs\": %.3f,\n",
              effective_gbs(slice_bytes, r.timing.best));
  std::printf("    \"compression_ratio\": %.3f,\n", r.ratio);
  std::printf("    \"stall_fraction\": %.3f,\n", r.stall_fraction);
  std::printf("    \"model_sweep_seconds\": %.6f,\n", model_seconds);
  std::printf("    \"speedup_vs_sync\": %.3f", speedup);
  if (is_acceptance) {
    std::printf(",\n    \"meets_2x\": %s\n", speedup >= 2.0 ? "true"
                                                            : "false");
  } else {
    std::printf("\n");
  }
  std::printf("  }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const int n = std::max(16, env_int("QUASAR_OOC_BENCH_QUBITS", 24));
  const int reps = std::max(1, env_int("QUASAR_OOC_BENCH_REPS", 3));
  const int seg_kb =
      std::max(1, env_int("QUASAR_OOC_BENCH_SEGMENT_KB", 512));
  const int io_threads =
      std::max(1, env_int("QUASAR_OOC_BENCH_IO_THREADS", 4));
  const int depth = std::max(2, env_int("QUASAR_OOC_BENCH_DEPTH", 4));
  const char* dir_env = std::getenv("QUASAR_STORAGE_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "/tmp";

  const Index count = index_pow2(n);
  const std::size_t slice_bytes =
      static_cast<std::size_t>(count) * sizeof(Amplitude);

  // The per-segment compute: a chain of dense two-qubit gates, the
  // stand-in for the fused gate-run a stage sweep applies per segment.
  // Overlap hides the slower side behind the faster one, so its payoff
  // peaks at compute ~ io parity — the pipeline's design point, and the
  // regime a real out-of-core stage runs in; the default chain length
  // sits near parity on the container disk. QUASAR_OOC_BENCH_GATES
  // overrides it (1 = the io-bound floor).
  const int num_gates = std::max(1, env_int("QUASAR_OOC_BENCH_GATES", 3));
  Rng rng(0x00c0);
  std::vector<PreparedGate> gates;
  gates.reserve(static_cast<std::size_t>(num_gates));
  for (int gi = 0; gi < num_gates; ++gi) {
    gates.push_back(prepare_gate(random_dense_unitary(2, rng), {0, 1}));
  }
  const ApplyOptions apply_options;
  const auto compute_segment = [&](Amplitude* data, int seg_exp) {
    for (const PreparedGate& gate : gates) {
      apply_gate(data, seg_exp, gate, apply_options);
    }
  };

  // Compute floor: the same per-segment kernel over a resident DRAM
  // buffer, scaled to the whole slice — what a sweep would cost if the
  // disk were free.
  oocore::SegmentStoreOptions probe_options;
  probe_options.segment_bytes = static_cast<std::size_t>(seg_kb) << 10;
  probe_options.directory = dir;
  const oocore::SegmentStore probe(count, probe_options);
  const int s = probe.segment_exponent();
  const Index seg_amps = probe.segment_amps();
  const std::size_t num_segments = probe.segment_count();

  AlignedVector<Amplitude> dram(seg_amps);
  fill_random(dram.data(), dram.size(), 7);
  const TimingStats compute_stats = time_stats_n(
      [&] {
        for (std::size_t i = 0; i < num_segments; ++i) {
          compute_segment(dram.data(), s);
        }
      },
      reps);

  const double disk_gbs = measure_disk_stream_gbs(dir);

  // Path 1: synchronous mmap (kDisk). Fill once, push everything to the
  // device, then time cold sweeps: fault in + compute + writeback+drop.
  SweepResult sync_r;
  {
    StorageOptions disk_options;
    disk_options.medium = StorageMedium::kDisk;
    disk_options.directory = dir;
    RankStorage slice(count, disk_options);
    for (std::size_t i = 0; i < num_segments; ++i) {
      fill_random(slice.data() + static_cast<Index>(i) * seg_amps, seg_amps,
                  1000 + i);
    }
    slice.flush_and_evict();
    sync_r.timing = time_stats_n(
        [&] {
          slice.advise_sequential();
          // The out-of-core contract: the slice does not fit in DRAM, so
          // the working set is one segment — each segment's dirty pages
          // are written back and evicted before the next is touched,
          // exactly the read/compute/writeback cycle the pipeline runs,
          // minus the overlap. (A whole-slice msync at rep end would
          // batch the writebacks into one stream, i.e. quietly assume
          // the full slice fits in DRAM.)
          for (std::size_t i = 0; i < num_segments; ++i) {
            const Index first = static_cast<Index>(i) * seg_amps;
            compute_segment(slice.data() + first, s);
            slice.flush_and_evict(first, seg_amps);
          }
        },
        reps);
  }

  // Paths 2-4: the async pipeline, one store per codec.
  const oocore::Codec codecs[] = {oocore::Codec::kRaw, oocore::Codec::kLz,
                                  oocore::Codec::kFp32Lz};
  SweepResult pipe_r[3];
  bool direct_io = false;
  for (int c = 0; c < 3; ++c) {
    oocore::SegmentStoreOptions store_options = probe_options;
    store_options.codec = codecs[c];
    oocore::SegmentStore store(count, store_options);
    direct_io = store.direct_io();
    oocore::SegmentScratch scratch;
    AlignedVector<Amplitude> seed(seg_amps);
    for (std::size_t i = 0; i < num_segments; ++i) {
      fill_random(seed.data(), seed.size(), 1000 + i);
      store.write_segment(i, seed.data(), scratch);
    }

    oocore::PipelineOptions pipe_options;
    pipe_options.io_threads = io_threads;
    pipe_options.depth = depth;
    oocore::SegmentPipeline pipe(store, pipe_options);
    std::vector<oocore::SegmentPipeline::Tile> tiles(num_segments);
    for (std::size_t i = 0; i < num_segments; ++i) {
      tiles[i] = {static_cast<std::uint32_t>(i)};
    }
    pipe_r[c].timing = time_stats_n(
        [&] {
          pipe.sweep(tiles,
                     [&](Amplitude* data, const oocore::SegmentPipeline::Tile&,
                         std::size_t) { compute_segment(data, s); },
                     /*writeback=*/true);
        },
        reps);

    const oocore::StoreStats st = store.stats();
    const std::uint64_t raw = st.raw_bytes_read + st.raw_bytes_written;
    const std::uint64_t disk = st.disk_bytes_read + st.disk_bytes_written;
    pipe_r[c].ratio = disk > 0 ? static_cast<double>(raw) /
                                     static_cast<double>(disk)
                               : 1.0;
    const oocore::PipelineStats ps = pipe.stats();
    pipe_r[c].stall_fraction =
        ps.sweep_ns > 0 ? static_cast<double>(ps.stall_ns) /
                              static_cast<double>(ps.sweep_ns)
                        : 0.0;
  }

  const double raw_moved = 2.0 * static_cast<double>(slice_bytes);
  const auto model_seconds = [&](double ratio) {
    OocoreModel m;
    m.disk_bw_gbs = disk_gbs;
    m.compression_ratio = ratio;
    return oocore_sweep_seconds(m, compute_stats.best, raw_moved);
  };
  // The synchronous path has no overlap: compute + io, not max of them.
  const double sync_model_seconds = [&] {
    OocoreModel m;
    m.disk_bw_gbs = disk_gbs;
    return compute_stats.best + oocore_io_seconds(m, raw_moved);
  }();

  std::printf("{\n");
  std::printf("  \"qubits\": %d,\n", n);
  std::printf("  \"slice_bytes\": %llu,\n",
              static_cast<unsigned long long>(slice_bytes));
  std::printf("  \"segment_bytes\": %llu,\n",
              static_cast<unsigned long long>(probe.segment_raw_bytes()));
  std::printf("  \"segments\": %zu,\n", num_segments);
  std::printf("  \"io_threads\": %d,\n", io_threads);
  std::printf("  \"pipeline_depth\": %d,\n", depth);
  std::printf("  \"gates_per_segment\": %d,\n", num_gates);
  std::printf("  \"direct_io\": %s,\n", direct_io ? "true" : "false");
  std::printf("  \"disk_stream_gbs\": %.3f,\n", disk_gbs);
  print_timing_json("compute", compute_stats, /*indent=*/2);
  print_sweep("sync_mmap", sync_r, slice_bytes, sync_model_seconds,
              sync_r.timing.best, false, false);
  print_sweep("pipelined_raw", pipe_r[0], slice_bytes,
              model_seconds(pipe_r[0].ratio), sync_r.timing.best, true,
              false);
  print_sweep("pipelined_lz", pipe_r[1], slice_bytes,
              model_seconds(pipe_r[1].ratio), sync_r.timing.best, false,
              false);
  print_sweep("pipelined_fp32lz", pipe_r[2], slice_bytes,
              model_seconds(pipe_r[2].ratio), sync_r.timing.best, false,
              true);
  std::printf("}\n");
  return 0;
}
