/// \file fig8_multinode_scaling.cpp
/// \brief Regenerates Fig. 8: multi-node strong scaling of the full
/// simulator — 36 qubits on {16, 32, 64} and 42 qubits on
/// {1024, 2048, 4096} Cori II nodes.
///
/// Two parts: (a) the calibrated model at the paper's full scale (the
/// figure's curves); (b) a bit-exact virtual-cluster run of a scaled-down
/// instance, showing that the schedule's swap count really is flat as the
/// node count grows — the property behind the good strong scaling.
#include "bench/common.hpp"
#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "perfmodel/run_model.hpp"
#include "runtime/distributed.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

void model_scaling(int qubits, const std::vector<int>& node_counts) {
  const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  so.seed = 1;
  const Circuit c = make_supremacy_circuit(so);
  const MachineModel knl = cori_knl_node();
  const InterconnectModel net = aries_dragonfly();

  std::printf("%d qubits, depth 25 (%zu gates):\n", qubits, c.num_gates());
  std::printf("%7s %7s %7s %9s %9s %7s %8s\n", "nodes", "local", "swaps",
              "kernel_s", "comm_s", "total", "speedup");
  double base_time = -1.0;
  for (int nodes : node_counts) {
    const int l = qubits - ilog2(static_cast<Index>(nodes));
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 5;
    o.build_matrices = false;
    const Schedule s = make_schedule(c, o);
    const RunPrediction p = model_run(c, s, knl, net, nodes);
    if (base_time < 0) base_time = p.total_seconds();
    std::printf("%7d %7d %7d %9.2f %9.2f %7.2f %7.2fx\n", nodes, l,
                p.swaps, p.kernel_seconds, p.comm_seconds,
                p.total_seconds(), base_time / p.total_seconds());
  }
}

}  // namespace

int main() {
  heading("Fig. 8 — model at paper scale (Cori II)");
  model_scaling(36, {16, 32, 64});
  std::printf("\n");
  model_scaling(42, {1024, 2048, 4096});
  std::printf("(paper Fig. 8: both curves reach ~2.5-3.5x speedup at 4x "
              "nodes — sublinear because the all-to-all does not speed up "
              "with node count)\n");

  heading("bit-exact scaled-down run on the virtual cluster");
  SupremacyOptions so;
  so.rows = 5;
  so.cols = 4;
  so.depth = 25;
  so.seed = 1;
  so.initial_hadamards = false;
  const Circuit c = strip_trailing_diagonals(make_supremacy_circuit(so));
  const int n = 20;
  std::printf("%dx%d depth-25 circuit (%zu gates) on growing virtual "
              "clusters:\n", so.rows, so.cols, c.num_gates());
  std::printf("%7s %7s %7s %16s %14s\n", "ranks", "local", "swaps",
              "bytes/rank sent", "entropy");
  for (int g = 2; g <= 6; g += 2) {
    const int l = n - g;
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 5;
    DistributedSimulator sim(n, l);
    sim.init_uniform();
    const Schedule s = make_schedule(c, o);
    sim.run(c, s);
    std::printf("%7d %7d %7d %13.1f MB %14.6f\n", 1 << g, l, s.num_swaps(),
                sim.stats().bytes_sent_per_rank / 1e6, sim.entropy());
  }
  std::printf("(the swap count stays flat while per-rank volume shrinks "
              "with the local state — the scaling driver of Fig. 8)\n");
  return 0;
}
