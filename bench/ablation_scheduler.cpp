/// \file ablation_scheduler.cpp
/// \brief Ablation study of the Sec. 3.5/3.6 scheduler optimizations.
///
/// Toggles each design choice independently on depth-25 supremacy
/// circuits and reports its effect on the two quantities that set the
/// run time: global-to-local swaps (communication) and clusters (kernel
/// sweeps). The paper's qualitative claims:
///   - CZ specialization halves communication (Sec. 3.5: 2x for 36q);
///   - the swap-target search can remove further swaps (Sec. 3.6.1);
///   - boundary adjustment removes small trailing clusters (step 3);
///   - full diagonal specialization (median instances) is cheaper than
///     the worst case (Fig. 5 dashed vs solid);
///   - larger kmax means fewer clusters (Table 1).
#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "sched/schedule.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

struct Row {
  const char* label;
  ScheduleOptions options;
};

void sweep(int qubits, int num_local) {
  const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  so.seed = 1;
  const Circuit c = make_supremacy_circuit(so);

  ScheduleOptions base;
  base.num_local = num_local;
  base.kmax = 5;
  base.build_matrices = false;

  std::vector<Row> rows_to_run;
  rows_to_run.push_back({"full optimizations (worst-case spec)", base});
  {
    ScheduleOptions o = base;
    o.specialization = SpecializationMode::kNone;
    rows_to_run.push_back({"no gate specialization at all", o});
  }
  {
    ScheduleOptions o = base;
    o.specialization = SpecializationMode::kFull;
    rows_to_run.push_back({"full diagonal spec (median instance)", o});
  }
  {
    ScheduleOptions o = base;
    o.swap_search = false;
    rows_to_run.push_back({"no swap-target search", o});
  }
  {
    ScheduleOptions o = base;
    o.adjust_swaps = false;
    rows_to_run.push_back({"no boundary adjustment (step 3)", o});
  }
  {
    ScheduleOptions o = base;
    o.qubit_mapping = true;
    rows_to_run.push_back({"+ cache-aware qubit mapping", o});
  }
  {
    ScheduleOptions o = base;
    o.kmax = 3;
    rows_to_run.push_back({"kmax = 3 instead of 5", o});
  }

  std::printf("%d qubits (%zu gates), %d local:\n", qubits, c.num_gates(),
              num_local);
  std::printf("  %-40s %6s %9s %14s\n", "configuration", "swaps", "clusters",
              "gates/cluster");
  for (const Row& row : rows_to_run) {
    const Schedule s = make_schedule(c, row.options);
    std::printf("  %-40s %6d %9zu %14.1f\n", row.label, s.num_swaps(),
                s.num_clusters(),
                static_cast<double>(c.num_gates()) /
                    static_cast<double>(s.num_clusters()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  heading("scheduler ablation (depth-25 supremacy circuits)");
  sweep(30, 25);
  sweep(36, 30);
  sweep(42, 36);
  return 0;
}
