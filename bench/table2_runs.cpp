/// \file table2_runs.cpp
/// \brief Regenerates Table 2: full supremacy-circuit runs — time,
/// communication fraction, and speedup over the per-gate baseline of [5]
/// — plus the Sec. 4.2.2 Edison comparison.
///
/// Part 1 models the paper's four Cori II configurations end-to-end from
/// real schedules (the state is never allocated; scheduling is exact at
/// 45 qubits). Part 2 *executes* a scaled-down instance bit-exactly on
/// the virtual cluster — ours vs the baseline scheme — and reports
/// measured wall-clock and communication volumes.
#include "bench/common.hpp"
#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "obs/trace_export.hpp"
#include "perfmodel/run_model.hpp"
#include "runtime/baseline.hpp"
#include "runtime/distributed.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

struct PaperRow {
  int qubits;
  const char* grid;
  int gates;
  int nodes;
  double time_s;
  double comm_pct;   // -1: not reported
  double speedup;    // -1: not reported
};

const PaperRow kPaperRows[] = {
    {30, "6x5", 369, 1, 9.58, 0.0, 14.8},
    {36, "6x6", 447, 64, 28.92, 42.9, 12.8},
    {42, "7x6", 528, 4096, 79.53, 71.8, 12.4},
    {45, "9x5", 569, 8192, 552.61, 78.0, -1.0},
};

}  // namespace

int main() {
  // QUASAR_TRACE=<path> dumps a chrome://tracing timeline of the
  // measured virtual-cluster run below.
  obs::EnvTraceGuard trace_guard;
  heading("Table 2 — modeled at paper scale (Cori II, KNL nodes)");
  std::printf("%7s %6s %7s | %9s %8s %8s | paper: time comm%% speedup\n",
              "qubits", "nodes", "swaps", "time[s]", "comm%", "speedup");
  const MachineModel knl = cori_knl_node();
  const InterconnectModel net = aries_dragonfly();

  for (const PaperRow& row : kPaperRows) {
    const auto [rows, cols] = supremacy_grid_for_qubits(row.qubits);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    so.initial_hadamards = false;  // simulators start from the uniform state
    const Circuit c = strip_trailing_diagonals(make_supremacy_circuit(so));

    const int l = row.qubits - ilog2(static_cast<Index>(row.nodes));
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 5;
    o.build_matrices = false;
    const Schedule s = make_schedule(c, o);
    const RunPrediction ours = model_run(c, s, knl, net, row.nodes);
    const RunPrediction base = model_baseline_run(
        c, l, SpecializationMode::kWorstCase, knl, net, row.nodes);
    const double speedup = base.total_seconds() / ours.total_seconds();

    std::printf("%7d %6d %7d | %9.2f %8.1f %7.1fx | %10.2f %5.1f %6.1fx\n",
                row.qubits, row.nodes, s.num_swaps(), ours.total_seconds(),
                100.0 * ours.comm_fraction(), speedup, row.time_s,
                row.comm_pct, row.speedup < 0 ? 0.0 : row.speedup);
  }
  std::printf("(45-qubit run: paper reports 0.428 PFLOPS sustained and no "
              "baseline comparison — the baseline could not run at that "
              "size)\n");

  heading("Sec. 4.2.2 — 36 qubits on 64 Edison sockets (model)");
  {
    const auto [rows, cols] = supremacy_grid_for_qubits(36);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    so.initial_hadamards = false;
    const Circuit c = strip_trailing_diagonals(make_supremacy_circuit(so));
    ScheduleOptions o;
    o.num_local = 30;
    o.kmax = 4;  // Fig. 10: the right kernel size on Edison
    o.build_matrices = false;
    const Schedule s = make_schedule(c, o);
    const RunPrediction ours =
        model_run(c, s, edison_socket(), net, 64);
    const RunPrediction base = model_baseline_run(
        c, 30, SpecializationMode::kWorstCase, edison_socket(), net, 64);
    std::printf("modeled: %.1f s total (paper: 99 s incl. 8.1 s entropy; "
                "90.9 s simulation); speedup over [5]: %.1fx (paper: >4x "
                "on identical hardware)\n",
                ours.total_seconds(),
                base.total_seconds() / ours.total_seconds());
  }

  heading("measured — scaled-down bit-exact run on the virtual cluster");
  {
    SupremacyOptions so;
    so.rows = env_int("QUASAR_BENCH_ROWS", 5);
    so.cols = env_int("QUASAR_BENCH_COLS", 4);
    so.depth = 25;
    so.seed = 1;
    so.initial_hadamards = false;
    const Circuit c = strip_trailing_diagonals(make_supremacy_circuit(so));
    const int n = so.rows * so.cols;
    const int l = n - 4;  // 16 virtual ranks

    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 5;
    Timer ours_timer;
    const Schedule s = make_schedule(c, o);
    DistributedSimulator ours(n, l);
    ours.init_uniform();
    ours.run(c, s);
    const double ours_seconds = ours_timer.seconds();

    Timer base_timer;
    BaselineOptions bo;
    bo.specialization = SpecializationMode::kWorstCase;
    BaselineSimulator base(n, l, bo);
    base.init_uniform();
    base.run(c);
    const double base_seconds = base_timer.seconds();

    const double diff = ours.gather().max_abs_diff(base.gather());
    std::printf("%dx%d depth-25 (%d qubits, %zu gates) on 16 virtual "
                "ranks:\n", so.rows, so.cols, n, c.num_gates());
    std::printf("  ours:     %6.2f s wall, %3d all-to-alls, %7.1f MB/rank "
                "sent\n", ours_seconds,
                static_cast<int>(ours.stats().alltoalls),
                ours.stats().bytes_sent_per_rank / 1e6);
    std::printf("  baseline: %6.2f s wall, %3d pairwise exchanges, %7.1f "
                "MB/rank sent\n", base_seconds,
                static_cast<int>(base.stats().pairwise_exchanges),
                base.stats().bytes_sent_per_rank / 1e6);
    std::printf("  wall-clock speedup %.1fx, comm-volume reduction %.1fx, "
                "state agreement %.1e\n",
                base_seconds / ours_seconds,
                static_cast<double>(base.stats().bytes_sent_per_rank) /
                    static_cast<double>(ours.stats().bytes_sent_per_rank),
                diff);
    std::printf("(in-process 'communication' is memcpy, so the measured "
                "wall-clock speedup reflects the kernel-fusion gain; the "
                "communication-volume ratio is the network-side gain the "
                "paper banks at scale)\n");
  }
  return 0;
}
