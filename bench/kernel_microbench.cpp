/// \file kernel_microbench.cpp
/// \brief google-benchmark microbenchmarks of the gate kernels: per-k
/// sweep rates, low- vs high-order placements, backend and blocking
/// comparisons, and the diagonal/swap fast paths.
#include <benchmark/benchmark.h>

#include "core/aligned.hpp"
#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"
#include "kernels/naive.hpp"
#include "kernels/swap.hpp"

namespace {

using namespace quasar;

constexpr int kStateQubits = 20;  // 16 MiB state: out-of-cache, quick

GateMatrix dense_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 3; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cz().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}

AlignedVector<Amplitude>& shared_state() {
  static AlignedVector<Amplitude> state = [] {
    AlignedVector<Amplitude> s(index_pow2(kStateQubits), Amplitude{});
    s[0] = 1.0;
    return s;
  }();
  return state;
}

void report(benchmark::State& state, int k) {
  const double amps = static_cast<double>(index_pow2(kStateQubits));
  state.SetItemsProcessed(static_cast<std::int64_t>(
      amps * static_cast<double>(state.iterations())));
  state.counters["GFLOPS"] = benchmark::Counter(
      flops_per_amplitude(k) * amps * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GateKernel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool high_order = state.range(1) != 0;
  Rng rng(k * 7 + 1);
  std::vector<int> locations(k);
  for (int i = 0; i < k; ++i) {
    locations[i] = high_order ? kStateQubits - k + i : i;
  }
  const PreparedGate gate = prepare_gate(dense_unitary(k, rng), locations);
  auto& psi = shared_state();
  for (auto _ : state) {
    apply_gate(psi.data(), kStateQubits, gate, {});
  }
  report(state, k);
}
BENCHMARK(BM_GateKernel)
    ->ArgsProduct({{1, 2, 3, 4, 5}, {0, 1}})
    ->ArgNames({"k", "high"});

void BM_ScalarKernel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(k * 11 + 3);
  std::vector<int> locations(k);
  for (int i = 0; i < k; ++i) locations[i] = i;
  const PreparedGate gate = prepare_gate(dense_unitary(k, rng), locations);
  auto& psi = shared_state();
  for (auto _ : state) {
    apply_gate_scalar(psi.data(), kStateQubits, gate);
  }
  report(state, k);
}
BENCHMARK(BM_ScalarKernel)->DenseRange(1, 5)->ArgName("k");

void BM_BlockRows(benchmark::State& state) {
  const int br = static_cast<int>(state.range(0));
  Rng rng(17);
  const PreparedGate gate =
      prepare_gate(dense_unitary(5, rng), {4, 5, 6, 7, 8});
  auto& psi = shared_state();
  ApplyOptions options;
  options.block_rows = br;
  for (auto _ : state) {
    apply_gate(psi.data(), kStateQubits, gate, options);
  }
  report(state, 5);
}
BENCHMARK(BM_BlockRows)->RangeMultiplier(2)->Range(1, 8)->ArgName("rows");

void BM_DiagonalKernel(benchmark::State& state) {
  const PreparedGate cz = prepare_gate(gates::cz(), {3, 12});
  auto& psi = shared_state();
  for (auto _ : state) {
    apply_diagonal(psi.data(), kStateQubits, cz, {});
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(index_pow2(kStateQubits)) *
                          2 * static_cast<std::int64_t>(kBytesPerAmplitude));
}
BENCHMARK(BM_DiagonalKernel);

void BM_BitSwap(benchmark::State& state) {
  auto& psi = shared_state();
  for (auto _ : state) {
    apply_bit_swap(psi.data(), kStateQubits, 2, kStateQubits - 2);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(index_pow2(kStateQubits)) *
                          static_cast<std::int64_t>(kBytesPerAmplitude));
}
BENCHMARK(BM_BitSwap);

void BM_NaiveTwoVector(benchmark::State& state) {
  Rng rng(23);
  const GateMatrix u = gates::random_su2(rng);
  static AlignedVector<Amplitude> out(index_pow2(kStateQubits));
  auto& psi = shared_state();
  for (auto _ : state) {
    apply_single_qubit_two_vector(psi.data(), out.data(), kStateQubits, u,
                                  kStateQubits / 2);
  }
  report(state, 1);
}
BENCHMARK(BM_NaiveTwoVector);

}  // namespace
