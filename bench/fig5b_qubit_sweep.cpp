/// \file fig5b_qubit_sweep.cpp
/// \brief Regenerates Fig. 5b: communication for depth-25 supremacy
/// circuits as a function of qubit count {30, 36, 42, 45, 49}.
///
/// The paper's headline scheduling result: the whole depth-25 circuit
/// runs with 1-2 global-to-local swaps regardless of size — which is
/// what makes a 49-qubit SSD-backed simulation thinkable (Sec. 5).
#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Fig. 5b — #swaps (ours) for depth-25 circuits vs #qubits");
  std::printf("%7s |%s   (x = would be single-node)\n", "qubits",
              "  l=29  l=30  l=31  l=32");
  for (int qubits : {30, 36, 42, 45, 49}) {
    const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);
    std::printf("%7d |", qubits);
    for (int l = 29; l <= 32; ++l) {
      if (l >= qubits) {
        std::printf("  %4s", "x");
        continue;
      }
      ScheduleOptions o;
      o.num_local = l;
      o.kmax = 5;
      o.build_matrices = false;
      o.specialization = SpecializationMode::kWorstCase;
      std::printf("  %4d", make_schedule(c, o).num_swaps());
    }
    std::printf("\n");
  }
  std::printf("(paper: 1 swap at 36 qubits after the swap search; 2 swaps "
              "at 42/45/49 qubits)\n");

  heading("Fig. 5b lower — #global gates per-gate scheme of [5]");
  std::printf("%7s |%12s %12s\n", "qubits", "worst(dash)", "median(solid)");
  for (int qubits : {30, 36, 42, 45, 49}) {
    const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);
    const int l = std::min(30, qubits - 1);
    std::printf("%7d |%12d %12d\n", qubits,
                count_global_gates(c, l, SpecializationMode::kWorstCase),
                count_global_gates(c, l, SpecializationMode::kFull));
  }
  std::printf("(paper: ~50 global gates for the depth-25 42-qubit circuit "
              "at 30 local qubits, Sec. 4.1.2)\n");
  return 0;
}
