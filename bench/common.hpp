/// \file common.hpp
/// \brief Shared helpers for the table/figure harnesses.
///
/// Every harness prints (a) the quantity the paper's table/figure shows,
/// regenerated from this implementation (measured on the host or modeled
/// for the paper's machines), and (b) the paper's reported value where
/// one exists, so EXPERIMENTS.md can record paper-vs-measured directly
/// from the bench output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/aligned.hpp"
#include "core/parse.hpp"
#include "core/rng.hpp"
#include "core/timing.hpp"
#include "core/types.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"

namespace quasar::bench {

/// Reads an integer environment override, e.g. QUASAR_BENCH_QUBITS.
/// Strict (core/parse): a malformed value throws instead of silently
/// benchmarking the atoi() of a typo.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return parse_int(value, "environment variable", name);
}

/// Number of state-vector qubits used by host kernel measurements.
/// Default 22 (64 MiB state, >100x the LLC); override with
/// QUASAR_BENCH_QUBITS.
inline int bench_qubits() { return env_int("QUASAR_BENCH_QUBITS", 22); }

/// Dense random k-qubit unitary for kernel timing.
inline GateMatrix random_dense_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 3; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cz().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}

/// Measures the sustained GFLOPS of applying a dense k-qubit gate at the
/// given bit-locations to a 2^n state.
inline double measure_kernel_gflops(int n, const std::vector<int>& locations,
                                    int num_threads = 0,
                                    double min_seconds = 0.15) {
  Rng rng(0xbe7c + locations.front());
  const int k = static_cast<int>(locations.size());
  const GateMatrix u = random_dense_unitary(k, rng);
  const PreparedGate gate = prepare_gate(u, locations);
  AlignedVector<Amplitude> state(index_pow2(n), Amplitude{0.0, 0.0});
  state[0] = 1.0;
  ApplyOptions options;
  options.num_threads = num_threads;
  apply_gate(state.data(), n, gate, options);  // warm up / page in
  const double secs = time_best_of(
      [&] { apply_gate(state.data(), n, gate, options); }, min_seconds);
  const double flops =
      flops_per_amplitude(k) * static_cast<double>(index_pow2(n));
  return flops / secs * 1e-9;
}

/// Low-order locations: {0..k-1}; high-order: the top k locations.
inline std::vector<int> low_order_locations(int k) {
  std::vector<int> q(k);
  for (int i = 0; i < k; ++i) q[i] = i;
  return q;
}

inline std::vector<int> high_order_locations(int k, int n) {
  std::vector<int> q(k);
  for (int i = 0; i < k; ++i) q[i] = n - k + i;
  return q;
}

/// Section header in the bench output.
inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Emits the shared timing triplet every microbench reports and the
/// regression comparator (obs/regress.hpp, quasar_bench_check) keys on:
///   "<prefix>_seconds"         best-of-reps   (gated against baseline)
///   "<prefix>_mean_seconds"    informational
///   "<prefix>_stddev_seconds"  informational
/// at the given indent, with a trailing comma unless `last`.
inline void print_timing_json(const char* prefix, const TimingStats& t,
                              int indent = 4, bool last = false) {
  std::printf("%*s\"%s_seconds\": %.6f,\n", indent, "", prefix, t.best);
  std::printf("%*s\"%s_mean_seconds\": %.6f,\n", indent, "", prefix,
              t.mean);
  std::printf("%*s\"%s_stddev_seconds\": %.6f%s\n", indent, "", prefix,
              t.stddev, last ? "" : ",");
}

}  // namespace quasar::bench
