/// \file fig5a_depth_sweep.cpp
/// \brief Regenerates Fig. 5a: communication required by 42-qubit
/// supremacy circuits as a function of circuit depth (10..50).
///
/// Top panel: number of global-to-local swaps our scheduler needs, for
/// 29..32 local qubits — the paper's key observation is that this is a
/// small staircase, mostly independent of the local qubit count.
/// Bottom panel: number of global gates that communicate if executed
/// one-by-one as in [5], worst case (dashed: all random single-qubit
/// gates dense) and median (solid: T gates diagonal).
#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  const auto [rows, cols] = supremacy_grid_for_qubits(42);
  const int depth_max = env_int("QUASAR_BENCH_DEPTH_MAX", 50);

  heading("Fig. 5a — #swaps (ours) vs circuit depth, 42 qubits");
  std::printf("%6s |%s\n", "depth", "  l=29  l=30  l=31  l=32");
  for (int depth = 10; depth <= depth_max; depth += 5) {
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = depth;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);
    std::printf("%6d |", depth);
    for (int l = 29; l <= 32; ++l) {
      ScheduleOptions o;
      o.num_local = l;
      o.kmax = 5;
      o.build_matrices = false;
      o.specialization = SpecializationMode::kWorstCase;
      std::printf("  %4d", make_schedule(c, o).num_swaps());
    }
    std::printf("\n");
  }
  std::printf("(paper: 1..3 swaps over this range, nearly independent of "
              "the local qubit count)\n");

  heading("Fig. 5a lower — #global gates per-gate scheme of [5]");
  std::printf("%6s |%12s %12s\n", "depth", "worst(dash)", "median(solid)");
  for (int depth = 10; depth <= depth_max; depth += 5) {
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = depth;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);
    std::printf("%6d |%12d %12d\n", depth,
                count_global_gates(c, 30, SpecializationMode::kWorstCase),
                count_global_gates(c, 30, SpecializationMode::kFull));
  }
  std::printf("(paper: grows linearly to ~200 (worst) / ~140 (median) at "
              "depth 50)\n");
  return 0;
}
