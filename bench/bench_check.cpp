/// \file bench_check.cpp
/// \brief CLI front-end for the perf-regression gate (obs/regress.hpp).
///
/// Usage:
///   quasar_bench_check <baseline.json> <result.json>
///       [--tol X] [--abs-floor S] [--inject F] [--verbose]
///
/// Compares a fresh microbench result against a committed baseline with
/// the rules documented in obs/regress.hpp. `--inject F` multiplies the
/// result's time leaves (and divides its throughput leaves) by F before
/// comparing — CI runs a self-compare with --inject 2 that must exit 1,
/// proving the gate trips on a genuine 2x slowdown.
///
/// Exit codes: 0 = pass, 1 = regression detected, 2 = usage/IO/parse
/// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/regress.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <result.json> [--tol X] "
               "[--abs-floor S] [--inject F] [--verbose]\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string paths[2];
  int num_paths = 0;
  quasar::obs::CompareOptions options;
  double inject = 0.0;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(arg, "--tol") == 0 && i + 1 < argc) {
      options.rel_tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--abs-floor") == 0 && i + 1 < argc) {
      options.abs_floor_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--inject") == 0 && i + 1 < argc) {
      inject = std::atof(argv[++i]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      return usage(argv[0]);
    } else if (num_paths < 2) {
      paths[num_paths++] = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (num_paths != 2) return usage(argv[0]);

  std::string texts[2];
  for (int i = 0; i < 2; ++i) {
    if (!read_file(paths[i], &texts[i])) {
      std::fprintf(stderr, "cannot read %s\n", paths[i].c_str());
      return 2;
    }
  }
  std::string error;
  auto baseline = quasar::obs::parse_json(texts[0], &error);
  if (!baseline) {
    std::fprintf(stderr, "%s: %s\n", paths[0].c_str(), error.c_str());
    return 2;
  }
  auto result = quasar::obs::parse_json(texts[1], &error);
  if (!result) {
    std::fprintf(stderr, "%s: %s\n", paths[1].c_str(), error.c_str());
    return 2;
  }
  if (inject > 0.0) {
    quasar::obs::inject_slowdown(*result, inject);
    std::printf("injected synthetic %.2fx slowdown into %s\n", inject,
                paths[1].c_str());
  }

  const quasar::obs::CompareReport report =
      quasar::obs::compare_bench_json(*baseline, *result, options);
  std::fputs(quasar::obs::format_compare_report(report, verbose).c_str(),
             stdout);
  return report.passed() ? 0 : 1;
}
