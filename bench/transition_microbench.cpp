/// \file transition_microbench.cpp
/// \brief Single-sweep qubit remapping vs the seed's swap-chain scheme.
///
/// Two measurements, emitted as JSON for EXPERIMENTS.md:
///   1. A >=3-swap local transition with a deferred phase: the seed's
///      chain (three apply_bit_swap sweeps + one phase flush sweep)
///      against ONE fused bit-permutation sweep with the phase folded in.
///   2. The group all-to-all: the seed's shadow-allocation exchange
///      (2x peak state footprint, re-implemented here verbatim) against
///      the in-place chunked VirtualCluster::alltoall_swap.
/// Overrides: QUASAR_TRANSITION_BENCH_QUBITS (default 24, the local
/// qubit count of both parts), QUASAR_TRANSITION_BENCH_REPS (default 3).
#include <algorithm>
#include <cstring>

#include "bench/common.hpp"
#include "core/bits.hpp"
#include "core/timing.hpp"
#include "kernels/apply.hpp"
#include "kernels/permute.hpp"
#include "kernels/swap.hpp"
#include "runtime/virtual_cluster.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

void fill_random(Amplitude* data, Index count, std::uint64_t seed) {
  Rng rng(seed);
  for (Index i = 0; i < count; ++i) {
    data[i] = Amplitude{rng.normal(), rng.normal()};
  }
}

/// The seed's all-to-all: build a full shadow copy of every rank slice
/// and block-copy into it (2x peak footprint).
void shadow_alltoall(std::vector<AlignedVector<Amplitude>>& buffers,
                     int num_local, const std::vector<int>& globals) {
  const int q = static_cast<int>(globals.size());
  const int l = num_local;
  const Index block = index_pow2(l - q);
  const Index top_count = index_pow2(q);
  const int ranks = static_cast<int>(buffers.size());

  std::vector<AlignedVector<Amplitude>> next(ranks);
  for (auto& buffer : next) buffer.resize(index_pow2(l));
  for (int r = 0; r < ranks; ++r) {
    Index r_swapped = 0;
    for (int i = 0; i < q; ++i) {
      r_swapped |= static_cast<Index>(
                       get_bit(static_cast<Index>(r), globals[i] - l))
                   << i;
    }
    for (Index h = 0; h < top_count; ++h) {
      Index dest_rank = static_cast<Index>(r);
      for (int i = 0; i < q; ++i) {
        dest_rank = set_bit(dest_rank, globals[i] - l, get_bit(h, i));
      }
      std::memcpy(next[dest_rank].data() + r_swapped * block,
                  buffers[r].data() + h * block,
                  block * sizeof(Amplitude));
    }
  }
  buffers.swap(next);
}

}  // namespace

int main() {
  // Floor of 10: the transition part swaps locations {0,1,2} with
  // {l-7,l-6,l-5}, which are distinct only from l = 10 up.
  const int l = std::max(10, env_int("QUASAR_TRANSITION_BENCH_QUBITS", 24));
  const int reps = std::max(1, env_int("QUASAR_TRANSITION_BENCH_REPS", 3));
  const Amplitude phase{0.6, 0.8};

  // Part 1: >=3-swap transition on a 2^l local state, deferred phase to
  // flush. Chain = 3 bit-swap sweeps + 1 phase sweep; fused = 1 sweep.
  std::vector<int> perm(l);
  for (int j = 0; j < l; ++j) perm[j] = j;
  std::swap(perm[0], perm[l - 7]);
  std::swap(perm[1], perm[l - 6]);
  std::swap(perm[2], perm[l - 5]);

  AlignedVector<Amplitude> state(index_pow2(l));
  fill_random(state.data(), state.size(), 1);

  const TimingStats chain_t = time_stats_n(
      [&] {
        apply_bit_swap(state.data(), l, 0, l - 7);
        apply_bit_swap(state.data(), l, 1, l - 6);
        apply_bit_swap(state.data(), l, 2, l - 5);
        apply_global_phase(state.data(), l, phase);
      },
      reps);
  const TimingStats fused_t = time_stats_n(
      [&] { apply_fused_bit_permutation(state.data(), l, perm, phase); },
      reps);
  const double kernel_speedup = chain_t.best / fused_t.best;

  // Part 2: world all-to-all over 2^g ranks holding 2^(l-g) amplitudes
  // each (total footprint 2^l, as in part 1): the seed's shadow scheme
  // vs the in-place chunked exchange.
  const int g = 3;
  const int cl = l - g;  // per-rank local qubits
  const std::vector<int> globals{cl, cl + 1, cl + 2};

  std::vector<AlignedVector<Amplitude>> shadow_buffers(index_pow2(g));
  for (int r = 0; r < static_cast<int>(shadow_buffers.size()); ++r) {
    shadow_buffers[r].resize(index_pow2(cl));
    fill_random(shadow_buffers[r].data(), shadow_buffers[r].size(),
                100 + r);
  }
  const TimingStats shadow_t = time_stats_n(
      [&] { shadow_alltoall(shadow_buffers, cl, globals); }, reps);

  VirtualCluster cluster(l, cl);
  for (int r = 0; r < cluster.num_ranks(); ++r) {
    fill_random(cluster.rank_data(r), cluster.local_size(), 100 + r);
  }
  const TimingStats chunked_t =
      time_stats_n([&] { cluster.alltoall_swap(globals); }, reps);
  const double alltoall_speedup = shadow_t.best / chunked_t.best;

  std::printf("{\n");
  std::printf("  \"local_qubits\": %d,\n", l);
  std::printf("  \"transition\": {\n");
  std::printf("    \"swaps\": 3,\n");
  print_timing_json("swap_chain", chain_t);
  print_timing_json("fused_sweep", fused_t);
  std::printf("    \"speedup\": %.3f,\n", kernel_speedup);
  std::printf("    \"meets_2x\": %s\n", kernel_speedup >= 2.0 ? "true"
                                                              : "false");
  std::printf("  },\n");
  std::printf("  \"alltoall\": {\n");
  std::printf("    \"ranks\": %d,\n", static_cast<int>(index_pow2(g)));
  print_timing_json("shadow", shadow_t);
  print_timing_json("chunked", chunked_t);
  std::printf("    \"speedup\": %.3f,\n", alltoall_speedup);
  std::printf("    \"peak_bounce_bytes\": %llu,\n",
              static_cast<unsigned long long>(
                  cluster.stats().peak_bounce_bytes));
  std::printf("    \"bounce_budget_bytes\": %llu\n",
              static_cast<unsigned long long>(
                  cluster.storage().bounce_buffer_bytes));
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
