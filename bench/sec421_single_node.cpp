/// \file sec421_single_node.cpp
/// \brief Regenerates Sec. 4.2.1's claim: "Running a single-socket
/// simulation of a 30-qubit quantum supremacy circuit yields an
/// improvement in time-to-solution by 3x."
///
/// Measures three execution strategies on a supremacy circuit sized for
/// this host (QUASAR_BENCH_SEC421_QUBITS, default 20 = 16 MiB state):
///   1. gate-by-gate, in-place SIMD kernels (the pre-fusion baseline);
///   2. fused clusters (kmax sweep) without qubit mapping;
///   3. fused clusters with the Sec. 3.6.2 qubit mapping.
#include "bench/common.hpp"
#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "sched/executor.hpp"
#include "simulator/simulator.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  const int n = env_int("QUASAR_BENCH_SEC421_QUBITS", 20);
  // Grid as square as possible with n = rows*cols.
  int rows = 1;
  for (int r = 1; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  SupremacyOptions so;
  so.rows = rows;
  so.cols = n / rows;
  so.depth = 25;
  so.seed = 1;
  so.initial_hadamards = false;
  const Circuit c = strip_trailing_diagonals(make_supremacy_circuit(so));

  heading("Sec. 4.2.1 — single-node time-to-solution");
  std::printf("workload: %dx%d depth-25 supremacy circuit (%d qubits, %zu "
              "gates), backend %s\n",
              so.rows, so.cols, n, c.num_gates(), simd_backend_name());

  StateVector state(n);
  auto run_once = [&](auto&& fn) {
    state.set_uniform_superposition();
    Timer t;
    fn();
    return t.seconds();
  };

  Simulator sim(state);
  const double gate_by_gate =
      run_once([&] { sim.run(c); });
  std::printf("  gate-by-gate:              %8.3f s (1.0x)\n", gate_by_gate);

  for (int kmax : {3, 4, 5}) {
    ScheduleOptions o;
    o.num_local = n;
    o.kmax = kmax;
    const Schedule schedule = make_schedule(c, o);
    const double fused =
        run_once([&] { run_fused(state, c, schedule); });
    std::printf("  fused kmax=%d (%3zu sweeps): %8.3f s (%.1fx)\n", kmax,
                schedule.num_clusters(), fused, gate_by_gate / fused);
  }
  {
    ScheduleOptions o;
    o.num_local = n;
    o.kmax = 5;
    o.qubit_mapping = true;
    const Schedule schedule = make_schedule(c, o);
    const double fused =
        run_once([&] { run_fused(state, c, schedule); });
    std::printf("  fused kmax=5 + mapping:    %8.3f s (%.1fx)\n", fused,
                gate_by_gate / fused);
  }
  std::printf("(paper: 3x on one Edison socket at 30 qubits; the ratio of "
              "total sweeps — %zu gates vs ~%zu clusters — bounds the "
              "bandwidth-limited gain)\n",
              c.num_gates(),
              make_schedule(c, [&] {
                ScheduleOptions o;
                o.num_local = n;
                o.kmax = 5;
                o.build_matrices = false;
                return o;
              }()).num_clusters());
  return 0;
}
