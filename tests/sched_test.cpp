#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "sched/schedule.hpp"
#include "sched/stage_finder.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(5));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.t(a); break;
      case 2: c.append_custom({a}, gates::random_su2(rng)); break;
      case 3: c.cz(a, b); break;
      case 4: c.cnot(a, b); break;
    }
  }
  return c;
}

/// Structural validity of a schedule against its circuit.
void check_schedule_invariants(const Circuit& circuit,
                               const Schedule& schedule,
                               const ScheduleOptions& options) {
  // 1. Every gate appears exactly once across all stages.
  std::vector<int> seen(circuit.num_gates(), 0);
  for (const Stage& stage : schedule.stages) {
    for (std::size_t g : stage.gates) ++seen[g];
  }
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    EXPECT_EQ(seen[i], 1) << "gate " << i;
  }

  // 2. Per-qubit program order is preserved by the stage item order.
  std::vector<std::size_t> emitted;
  for (const Stage& stage : schedule.stages) {
    for (const StageItem& item : stage.items) {
      if (item.kind == StageItem::Kind::kCluster) {
        const Cluster& cl = stage.clusters[item.cluster];
        emitted.insert(emitted.end(), cl.ops.begin(), cl.ops.end());
      } else {
        emitted.push_back(item.op);
      }
    }
  }
  ASSERT_EQ(emitted.size(), circuit.num_gates());
  std::map<Qubit, std::vector<std::size_t>> per_qubit;
  for (std::size_t e : emitted) {
    for (Qubit q : circuit.op(e).qubits) per_qubit[q].push_back(e);
  }
  for (auto& [q, list] : per_qubit) {
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()))
        << "order violated on qubit " << q;
  }

  // 3. Stage mappings are permutations; gates are executable; clusters
  // respect kmax and live on local locations.
  for (const Stage& stage : schedule.stages) {
    std::set<int> locations(stage.qubit_to_location.begin(),
                            stage.qubit_to_location.end());
    EXPECT_EQ(locations.size(), stage.qubit_to_location.size());
    for (std::size_t g : stage.gates) {
      EXPECT_TRUE(detail::executable_under(circuit.op(g),
                                           stage.qubit_to_location,
                                           schedule.num_local,
                                           options.specialization));
    }
    for (const Cluster& cl : stage.clusters) {
      EXPECT_LE(cl.width(), options.kmax);
      EXPECT_TRUE(std::is_sorted(cl.qubits.begin(), cl.qubits.end()));
      EXPECT_LT(cl.qubits.back(), schedule.num_local);
      EXPECT_FALSE(cl.ops.empty());
      if (options.build_matrices) {
        ASSERT_TRUE(cl.matrix.has_value());
        EXPECT_TRUE(cl.matrix->is_unitary(1e-8));
      }
    }
  }
}

TEST(Scheduler, SingleNodeIsOneStage) {
  const Circuit c = random_circuit(8, 60, 1);
  ScheduleOptions o;
  o.num_local = 8;
  o.kmax = 4;
  const Schedule s = make_schedule(c, o);
  EXPECT_EQ(s.stages.size(), 1u);
  EXPECT_EQ(s.num_swaps(), 0);
  check_schedule_invariants(c, s, o);
}

TEST(Scheduler, MultiNodeInvariants) {
  for (std::uint64_t seed : {2u, 3u, 4u}) {
    const Circuit c = random_circuit(9, 80, seed);
    for (int l : {5, 6, 7}) {
      for (auto mode : {SpecializationMode::kNone,
                        SpecializationMode::kWorstCase,
                        SpecializationMode::kFull}) {
        ScheduleOptions o;
        o.num_local = l;
        o.kmax = 3;
        o.specialization = mode;
        const Schedule s = make_schedule(c, o);
        check_schedule_invariants(c, s, o);
      }
    }
  }
}

TEST(Scheduler, SpecializationReducesSwaps) {
  // More aggressive specialization can only help (or tie).
  const auto [rows, cols] = supremacy_grid_for_qubits(30);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  const Circuit c = make_supremacy_circuit(so);
  int swaps[3] = {0, 0, 0};
  int i = 0;
  for (auto mode : {SpecializationMode::kNone, SpecializationMode::kWorstCase,
                    SpecializationMode::kFull}) {
    ScheduleOptions o;
    o.num_local = 25;
    o.kmax = 5;
    o.specialization = mode;
    o.build_matrices = false;
    swaps[i++] = make_schedule(c, o).num_swaps();
  }
  EXPECT_GE(swaps[0], swaps[1]);  // none >= worst-case (CZ specialized)
  EXPECT_GE(swaps[1], swaps[2]);  // worst-case >= full (T also free)
  EXPECT_GT(swaps[0], 0);
}

TEST(Scheduler, SupremacySwapCountsMatchPaperScale) {
  // Fig. 5b / Sec. 3.5: depth-25 supremacy circuits need only a handful
  // of global-to-local swaps (paper: 1 for 36q, 2 for 42q/45q).
  for (int qubits : {30, 36, 42}) {
    const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    const Circuit c = make_supremacy_circuit(so);
    ScheduleOptions o;
    o.num_local = qubits - 6;  // 64 "nodes"
    o.kmax = 5;
    o.build_matrices = false;
    const Schedule s = make_schedule(c, o);
    EXPECT_LE(s.num_swaps(), 3) << qubits << " qubits";
    EXPECT_GE(s.num_swaps(), 1) << qubits << " qubits";
    // Orders of magnitude below the per-gate count (lower Fig. 5 panels).
    const int global_gates = count_global_gates(
        c, o.num_local, SpecializationMode::kWorstCase);
    EXPECT_GT(global_gates, 5 * s.num_swaps()) << qubits << " qubits";
  }
}

TEST(Scheduler, SwapSearchDoesNotHurt) {
  const auto [rows, cols] = supremacy_grid_for_qubits(36);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions with, without;
  with.num_local = without.num_local = 30;
  with.kmax = without.kmax = 5;
  with.build_matrices = without.build_matrices = false;
  with.swap_search = true;
  without.swap_search = false;
  EXPECT_LE(make_schedule(c, with).num_swaps(),
            make_schedule(c, without).num_swaps());
}

TEST(Scheduler, LargerKmaxGivesFewerClusters) {
  // Table 1's trend.
  const Circuit c = random_circuit(10, 120, 9);
  std::size_t previous = SIZE_MAX;
  for (int kmax : {3, 4, 5}) {
    ScheduleOptions o;
    o.num_local = 10;
    o.kmax = kmax;
    o.build_matrices = false;
    const std::size_t clusters = make_schedule(c, o).num_clusters();
    EXPECT_LE(clusters, previous) << "kmax " << kmax;
    previous = clusters;
  }
}

TEST(Scheduler, ClustersAbsorbMoreThanKmaxGates) {
  // Table 1: "more than kmax individual gates can be combined into one
  // cluster on average."
  SupremacyOptions so;
  so.rows = 4;
  so.cols = 4;
  so.depth = 25;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 16;
  o.kmax = 5;
  o.build_matrices = false;
  const Schedule s = make_schedule(c, o);
  const double mean_gates =
      static_cast<double>(c.num_gates()) /
      static_cast<double>(s.num_clusters());
  EXPECT_GT(mean_gates, static_cast<double>(o.kmax));
}

TEST(Scheduler, CountGlobalGatesModes) {
  Circuit c(6);
  c.t(5);        // diagonal on a global qubit (l = 4)
  c.h(5);        // dense on a global qubit
  c.cz(0, 5);    // diagonal two-qubit touching a global qubit
  c.cnot(5, 0);  // control global (diagonal on it), target local
  c.cnot(0, 5);  // target global -> dense
  c.h(0);        // purely local
  EXPECT_EQ(count_global_gates(c, 4, SpecializationMode::kNone), 5);
  EXPECT_EQ(count_global_gates(c, 4, SpecializationMode::kWorstCase), 3);
  EXPECT_EQ(count_global_gates(c, 4, SpecializationMode::kFull), 2);
}

TEST(Scheduler, OptionValidation) {
  const Circuit c = random_circuit(6, 10, 11);
  ScheduleOptions o;
  o.num_local = 0;
  EXPECT_THROW(make_schedule(c, o), Error);
  o.num_local = 7;
  EXPECT_THROW(make_schedule(c, o), Error);
  o.num_local = 2;
  o.kmax = 3;
  EXPECT_THROW(make_schedule(c, o), Error);
}

TEST(Scheduler, UnschedulableGateDetected) {
  Circuit c(5);
  Rng rng(1);
  // Dense 3-qubit custom gate cannot run with only 2 local qubits.
  GateMatrix u = GateMatrix::identity(3);
  u = gates::h().embed(3, {0}) * u;
  u = gates::h().embed(3, {1}) * u;
  u = gates::h().embed(3, {2}) * u;
  c.append_custom({0, 1, 2}, u);
  ScheduleOptions o;
  o.num_local = 2;
  o.kmax = 2;
  EXPECT_THROW(make_schedule(c, o), Error);
}

TEST(Scheduler, QubitMappingProducesValidSchedule) {
  const Circuit c = random_circuit(8, 80, 13);
  ScheduleOptions o;
  o.num_local = 8;
  o.kmax = 3;
  o.qubit_mapping = true;
  const Schedule s = make_schedule(c, o);
  check_schedule_invariants(c, s, o);
}

TEST(Scheduler, FusedExecutionMatchesReference) {
  // The acid test for clustering + fusion on one node: run the schedule
  // by applying fused clusters and compare against gate-by-gate.
  for (std::uint64_t seed : {21u, 22u}) {
    const Circuit c = random_circuit(7, 50, seed);
    ScheduleOptions o;
    o.num_local = 7;
    o.kmax = 4;
    o.qubit_mapping = false;
    const Schedule s = make_schedule(c, o);
    ASSERT_EQ(s.stages.size(), 1u);

    StateVector fused(7), expected(7);
    Rng rng(seed);
    for (Index i = 0; i < fused.size(); ++i) {
      fused[i] = Amplitude{rng.normal(), rng.normal()};
      expected[i] = fused[i];
    }
    Simulator sim(fused);
    for (const StageItem& item : s.stages[0].items) {
      ASSERT_EQ(item.kind, StageItem::Kind::kCluster);
      const Cluster& cl = s.stages[0].clusters[item.cluster];
      sim.apply(*cl.matrix, cl.qubits);
    }
    reference_run(expected, c);
    EXPECT_LT(fused.max_abs_diff(expected), 1e-10) << "seed " << seed;
  }
}

}  // namespace
}  // namespace quasar
