/// \file check_test.cpp
/// \brief Run-time invariant guards (check/invariant.hpp), strict
/// parsing (core/parse.hpp), kind-preserving circuit round-trips, and
/// cross-engine sampling parity.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "check/invariant.hpp"
#include "circuit/circuit.hpp"
#include "circuit/io.hpp"
#include "core/parse.hpp"
#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "runtime/distributed.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

/// Flips validation on for the enclosing scope and restores the
/// environment-driven default afterwards, so test order cannot leak.
struct ValidateScope {
  explicit ValidateScope(bool on) { check::set_enabled(on); }
  ~ValidateScope() { check::reset_enabled(); }
};

// ---------------------------------------------------------------------
// Guard primitives
// ---------------------------------------------------------------------

TEST(Invariant, EnabledOverrideAndReset) {
  check::set_enabled(true);
  EXPECT_TRUE(check::enabled());
  check::set_enabled(false);
  EXPECT_FALSE(check::enabled());
  check::reset_enabled();  // back to QUASAR_VALIDATE (unset in CI tier 1)
}

TEST(Invariant, NormSquaredMatchesStateVector) {
  StateVector state(6);
  Simulator sim(state);
  Circuit c(6);
  for (int q = 0; q < 6; ++q) c.h(q);
  c.cnot(0, 5);
  sim.run(c);
  EXPECT_NEAR(check::norm_squared(state.data(), state.size()),
              state.norm_squared(), 1e-12);
}

TEST(Invariant, RequireFiniteDetectsNanAndInf) {
  std::vector<Amplitude> buf(16, Amplitude(0.25, 0.0));
  EXPECT_NO_THROW(check::require_finite(buf.data(), 16, "test"));
  buf[7] = Amplitude(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_THROW(check::require_finite(buf.data(), 16, "test"),
               check::ValidationError);
  buf[7] = Amplitude(0.0, std::numeric_limits<double>::infinity());
  try {
    check::require_finite(buf.data(), 16, "nan-site");
    FAIL() << "expected ValidationError";
  } catch (const check::ValidationError& e) {
    // The message must name the site and the offending index.
    EXPECT_NE(std::string(e.what()).find("nan-site"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
  }
}

TEST(Invariant, RequireFiniteFloatOverload) {
  std::vector<std::complex<float>> buf(8, {0.5f, 0.0f});
  EXPECT_NO_THROW(check::require_finite(buf.data(), 8, "test"));
  buf[3] = {std::numeric_limits<float>::quiet_NaN(), 0.0f};
  EXPECT_THROW(check::require_finite(buf.data(), 8, "test"),
               check::ValidationError);
}

TEST(Invariant, RequireNormPreserved) {
  EXPECT_NO_THROW(check::require_norm_preserved(1.0 + 1e-15, 1.0, 1e-12,
                                                "test"));
  EXPECT_THROW(check::require_norm_preserved(0.9, 1.0, 1e-12, "test"),
               check::ValidationError);
  // NaN norms must trip, not slide through a < comparison.
  EXPECT_THROW(
      check::require_norm_preserved(std::numeric_limits<double>::quiet_NaN(),
                                    1.0, 1e-12, "test"),
      check::ValidationError);
}

TEST(Invariant, RequireBijection) {
  EXPECT_NO_THROW(check::require_bijection({0, 1, 2, 3}, 4, "test"));
  EXPECT_NO_THROW(check::require_bijection({3, 0, 2, 1}, 4, "test"));
  EXPECT_THROW(check::require_bijection({0, 1, 2}, 4, "test"),
               check::ValidationError);  // wrong size
  EXPECT_THROW(check::require_bijection({0, 1, 2, 2}, 4, "test"),
               check::ValidationError);  // duplicate
  EXPECT_THROW(check::require_bijection({0, 1, 2, 4}, 4, "test"),
               check::ValidationError);  // out of range
}

TEST(Invariant, RequireUnitPhases) {
  std::vector<std::complex<double>> phases = {
      {1.0, 0.0}, {0.0, -1.0}, {std::sqrt(0.5), std::sqrt(0.5)}};
  EXPECT_NO_THROW(
      check::require_unit_phases(phases, check::phase_tolerance(10), "test"));
  phases.push_back({0.5, 0.0});
  EXPECT_THROW(
      check::require_unit_phases(phases, check::phase_tolerance(10), "test"),
      check::ValidationError);
}

TEST(Invariant, ToleranceModelsGrowWithWork) {
  EXPECT_GT(check::norm_tolerance(20, 100), check::norm_tolerance(20, 1));
  EXPECT_GT(check::state_tolerance(10, 400), check::state_tolerance(10, 4));
  EXPECT_GT(check::phase_tolerance(1000), check::phase_tolerance(1));
  // fp32 tolerances scale with the larger epsilon.
  EXPECT_GT(check::state_tolerance(10, 10, check::kEps32),
            check::state_tolerance(10, 10, check::kEps64));
}

// ---------------------------------------------------------------------
// Guards wired into the engines
// ---------------------------------------------------------------------

TEST(Invariant, CleanRunsPassWithValidationOn) {
  ValidateScope validate(true);
  Circuit c(8);
  for (int q = 0; q < 8; ++q) c.h(q);
  for (int q = 0; q + 1 < 8; ++q) c.cz(q, q + 1);
  c.t(7);
  c.rz(3, 0.37);

  StateVector state(8);
  EXPECT_NO_THROW(Simulator(state).run(c));

  DistributedSimulator dist(8, 6);
  dist.init_basis(0);
  ScheduleOptions options;
  options.num_local = 6;
  EXPECT_NO_THROW(dist.run(c, options));
  EXPECT_NEAR(dist.gather().max_abs_diff(state), 0.0, 1e-12);
}

TEST(Invariant, CorruptedStateIsCaughtWhenEnabled) {
  Circuit c(4);
  c.h(0);
  {
    // Disabled: the poisoned run completes silently (zero-overhead mode).
    ValidateScope validate(false);
    StateVector state(4);
    state[2] = Amplitude(std::numeric_limits<double>::quiet_NaN(), 0.0);
    EXPECT_NO_THROW(Simulator(state).run(c));
  }
  {
    ValidateScope validate(true);
    StateVector state(4);
    state[2] = Amplitude(std::numeric_limits<double>::quiet_NaN(), 0.0);
    EXPECT_THROW(Simulator(state).run(c), check::ValidationError);
  }
}

TEST(Invariant, NonUnitaryNormDriftIsCaughtWhenEnabled) {
  ValidateScope validate(true);
  // A state that is far from normalized still passes (guards compare
  // before/after, not against 1), but losing half the norm mid-run trips.
  StateVector state(4);
  state[0] = Amplitude(2.0, 0.0);  // norm^2 = 4, preserved by unitaries
  Circuit c(4);
  c.h(1);
  EXPECT_NO_THROW(Simulator(state).run(c));
}

// ---------------------------------------------------------------------
// Strict parsing (core/parse.hpp)
// ---------------------------------------------------------------------

TEST(Parse, IntAcceptsWholeTokensOnly) {
  EXPECT_EQ(parse_int("42", "x"), 42);
  EXPECT_EQ(parse_int("-7", "x"), -7);
  EXPECT_THROW(parse_int("", "x"), Error);
  EXPECT_THROW(parse_int("12x", "x"), Error);
  EXPECT_THROW(parse_int("banana", "x"), Error);
  EXPECT_THROW(parse_int("4.5", "x"), Error);
  EXPECT_THROW(parse_int("99999999999999999999", "x"), Error);  // overflow
}

TEST(Parse, IntInRange) {
  EXPECT_EQ(parse_int_in_range("5", 0, 10, "x"), 5);
  EXPECT_THROW(parse_int_in_range("11", 0, 10, "x"), Error);
  EXPECT_THROW(parse_int_in_range("-1", 0, 10, "x"), Error);
  try {
    parse_int_in_range("11", 0, 10, "depth");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The message must name the field so CLI users see what to fix.
    EXPECT_NE(std::string(e.what()).find("depth"), std::string::npos);
  }
}

TEST(Parse, DoubleAcceptsWholeTokensOnly) {
  EXPECT_DOUBLE_EQ(parse_double("0.5", "x"), 0.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3", "x"), -1e-3);
  EXPECT_THROW(parse_double("", "x"), Error);
  EXPECT_THROW(parse_double("1.5garbage", "x"), Error);
  EXPECT_THROW(parse_double("pi", "x"), Error);
}

TEST(Parse, CircuitReaderRejectsTrailingGarbage) {
  EXPECT_THROW(circuit_from_string("qubits 2\nH 0 junk\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 2\nH 0 @3 junk\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 2 extra\nH 0\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 0\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 63\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 2\nCZ 0 0\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 2\nRz 0 1.5x\n"), Error);
  EXPECT_NO_THROW(circuit_from_string("qubits 2\nH 0 @3\nRz 1 0.25\n"));
}

// ---------------------------------------------------------------------
// Kind- and parameter-preserving serialization: every GateKind round-trips
// ---------------------------------------------------------------------

TEST(CircuitRoundTrip, EveryGateKindPreservedExactly) {
  const Real theta = 0.87266462599716477;  // no short decimal form
  Circuit c(4);
  c.h(0);
  c.x(1);
  c.y(2);
  c.z(3);
  c.t(0);
  c.append_standard(GateKind::kTdg, {1});
  c.s(2);
  c.append_standard(GateKind::kSdg, {3});
  c.sqrt_x(0);
  c.sqrt_y(1);
  c.rx(2, theta);
  c.ry(3, -theta);
  c.rz(0, 3.0 * theta);
  c.phase(1, theta / 7.0);
  c.cz(0, 1);
  c.cnot(2, 3);
  c.swap(1, 2);
  c.cphase(0, 3, -2.5 * theta);
  Rng rng(99);
  c.append_custom({2}, gates::random_su2(rng));
  c.append_custom({0, 2},
                  gates::random_su2(rng).kron(gates::random_su2(rng)));

  const std::string text = circuit_to_string(c);
  const Circuit parsed = circuit_from_string(text);
  ASSERT_EQ(parsed.num_gates(), c.num_gates());
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    SCOPED_TRACE("gate " + std::to_string(i));
    EXPECT_EQ(parsed.op(i).kind, c.op(i).kind);  // kind survives, not U<k>
    EXPECT_EQ(parsed.op(i).qubits, c.op(i).qubits);
    EXPECT_EQ(parsed.op(i).param, c.op(i).param);  // angle bit-exact
    EXPECT_EQ(parsed.op(i).matrix->distance(*c.op(i).matrix), 0.0);
  }

  // Parameterized kinds must appear by name, not as anonymous matrices.
  EXPECT_NE(text.find("Rx "), std::string::npos);
  EXPECT_NE(text.find("Rz "), std::string::npos);
  EXPECT_NE(text.find("CP "), std::string::npos);
}

TEST(CircuitRoundTrip, SecondGenerationTextIsIdentical) {
  Rng rng(7);
  Circuit c(3);
  c.h(0);
  c.rz(1, 1.0 / 3.0);
  c.cphase(0, 2, -0.123456789012345678);
  c.append_custom({1}, gates::random_su2(rng));
  const std::string once = circuit_to_string(c);
  const std::string twice = circuit_to_string(circuit_from_string(once));
  EXPECT_EQ(once, twice);  // serialization is a fixpoint
}

// ---------------------------------------------------------------------
// Cross-engine sampling parity (exact, not statistical)
// ---------------------------------------------------------------------

Circuit sampling_workload(int n) {
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q + 1 < n; ++q) c.cz(q, q + 1);
  for (int q = 0; q < n; ++q) c.t(q);
  c.cnot(0, n - 1);
  c.rz(n / 2, 0.77);
  return c;
}

TEST(SamplingParity, DistributedMatchesGatheredExactly) {
  const int n = 9;
  const Circuit c = sampling_workload(n);
  for (int l : {5, 6, 8}) {
    SCOPED_TRACE("num_local=" + std::to_string(l));
    DistributedSimulator sim(n, l);
    sim.init_basis(0);
    ScheduleOptions options;
    options.num_local = l;
    options.qubit_mapping = true;  // non-identity mappings are the hard case
    sim.run(c, options);
    const StateVector gathered = sim.gather();
    for (std::uint64_t seed : {1ull, 2026ull, 0xDEADBEEFull}) {
      Rng rng_single(seed);
      Rng rng_dist(seed);
      const auto want = sample_outcomes(gathered, 64, rng_single);
      const auto got = sim.sample(64, rng_dist);
      EXPECT_EQ(want, got) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------
// measure_qubit floating-point edges
// ---------------------------------------------------------------------

TEST(MeasureEdge, DeterministicOutcomesDoNotTripKeepGuard) {
  Rng rng(5);
  {
    StateVector state(3);  // |000>: p1 = 0 exactly on every qubit
    for (int q = 0; q < 3; ++q) {
      EXPECT_EQ(measure_qubit(state, q, rng), 0);
    }
  }
  {
    StateVector state(3);
    Circuit c(3);
    c.x(0);
    c.x(1);
    c.x(2);
    Simulator(state).run(c);  // |111>: p1 = 1 exactly
    for (int q = 0; q < 3; ++q) {
      EXPECT_EQ(measure_qubit(state, q, rng), 1);
    }
  }
}

TEST(MeasureEdge, NanProbabilityIsRejectedLoudly) {
  // The NaN must sit where the p1 reduction reads it (bit 0 set): the
  // guard in measure_qubit sees only the measured-one branch; a NaN in
  // the other branch is require_finite's job, not measure_qubit's.
  StateVector state(2);
  state[1] = Amplitude(std::numeric_limits<double>::quiet_NaN(), 0.0);
  Rng rng(1);
  EXPECT_THROW(measure_qubit(state, 0, rng), Error);
}

TEST(MeasureEdge, RepeatedMeasurementIsStable) {
  // Collapse then re-measure: the second draw must reproduce the first
  // outcome with probability exactly 1 (p1 is 0 or 1 up to rounding, and
  // the clamp keeps it in range).
  Rng rng(17);
  StateVector state(4);
  Circuit c(4);
  for (int q = 0; q < 4; ++q) c.h(q);
  c.cz(0, 3);
  Simulator(state).run(c);
  const int first = measure_qubit(state, 2, rng);
  for (int repeat = 0; repeat < 8; ++repeat) {
    EXPECT_EQ(measure_qubit(state, 2, rng), first);
  }
}

}  // namespace
}  // namespace quasar
