#include <gtest/gtest.h>

#include <numbers>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gates/standard.hpp"

namespace quasar {
namespace {

class AllStandardKinds : public ::testing::TestWithParam<GateKind> {};

TEST_P(AllStandardKinds, MatrixIsUnitary) {
  EXPECT_TRUE(standard_matrix(GetParam()).is_unitary())
      << gate_name(GetParam());
}

TEST_P(AllStandardKinds, ArityMatchesMatrix) {
  EXPECT_EQ(standard_matrix(GetParam()).num_qubits(),
            standard_arity(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Gates, AllStandardKinds,
    ::testing::Values(GateKind::kH, GateKind::kX, GateKind::kY, GateKind::kZ,
                      GateKind::kT, GateKind::kTdg, GateKind::kS,
                      GateKind::kSdg, GateKind::kSqrtX, GateKind::kSqrtY,
                      GateKind::kCZ, GateKind::kCNot, GateKind::kSwap),
    [](const auto& info) { return gate_name(info.param); });

TEST(StandardGates, HadamardSquaresToIdentity) {
  const auto h = gates::h();
  EXPECT_LT((h * h).distance(GateMatrix::identity(1)), 1e-14);
}

TEST(StandardGates, TEighthPowerIsIdentity) {
  GateMatrix m = GateMatrix::identity(1);
  for (int i = 0; i < 8; ++i) m = gates::t() * m;
  EXPECT_LT(m.distance(GateMatrix::identity(1)), 1e-13);
}

TEST(StandardGates, TSquaredIsS) {
  EXPECT_LT((gates::t() * gates::t()).distance(gates::s()), 1e-14);
}

TEST(StandardGates, SSquaredIsZ) {
  EXPECT_LT((gates::s() * gates::s()).distance(gates::z()), 1e-14);
}

TEST(StandardGates, SqrtXSquaredIsX) {
  // The paper's X^(1/2) definition must square to X.
  EXPECT_LT((gates::sqrt_x() * gates::sqrt_x()).distance(gates::x()), 1e-14);
}

TEST(StandardGates, SqrtYSquaredIsY) {
  EXPECT_LT((gates::sqrt_y() * gates::sqrt_y()).distance(gates::y()), 1e-14);
}

TEST(StandardGates, PaperMatrixEntries) {
  // Spot-check the exact entries printed in Sec. 2.
  const auto sx = gates::sqrt_x();
  EXPECT_EQ(sx.at(0, 0), (Amplitude{0.5, 0.5}));
  EXPECT_EQ(sx.at(0, 1), (Amplitude{0.5, -0.5}));
  const auto sy = gates::sqrt_y();
  EXPECT_EQ(sy.at(0, 1), (Amplitude{-0.5, -0.5}));
  EXPECT_EQ(sy.at(1, 0), (Amplitude{0.5, 0.5}));
  const auto t = gates::t();
  EXPECT_NEAR(t.at(1, 1).real(), std::cos(std::numbers::pi / 4), 1e-15);
  EXPECT_NEAR(t.at(1, 1).imag(), std::sin(std::numbers::pi / 4), 1e-15);
}

TEST(StandardGates, CzIsSymmetric) {
  // CZ does not care which qubit is control (Sec. 2).
  const auto cz = gates::cz();
  EXPECT_LT(cz.permute_qubits({1, 0}).distance(cz), 1e-15);
}

TEST(StandardGates, CnotTruthTable) {
  const auto cnot = gates::cnot();
  // Control is qubit 0: |q1 q0> = |00>->|00>, |01>->|11>, |11>->|01>.
  EXPECT_EQ(cnot.at(0, 0), Amplitude{1.0});
  EXPECT_EQ(cnot.at(3, 1), Amplitude{1.0});
  EXPECT_EQ(cnot.at(1, 3), Amplitude{1.0});
  EXPECT_EQ(cnot.at(2, 2), Amplitude{1.0});
}

TEST(StandardGates, RotationsReduceToPaulis) {
  GateMatrix rx_pi = gates::rx(std::numbers::pi);
  rx_pi.scale(Amplitude{0.0, 1.0});  // e^{i pi/2} global phase
  EXPECT_LT(rx_pi.distance(gates::x()), 1e-14);

  GateMatrix rz_pi = gates::rz(std::numbers::pi);
  rz_pi.scale(Amplitude{0.0, 1.0});
  EXPECT_LT(rz_pi.distance(gates::z()), 1e-14);
}

TEST(StandardGates, PhaseGates) {
  EXPECT_LT(gates::phase(std::numbers::pi / 4).distance(gates::t()), 1e-14);
  EXPECT_LT(gates::cphase(std::numbers::pi).distance(gates::cz()), 1e-14);
  EXPECT_TRUE(gates::rz(0.3).is_diagonal());
  EXPECT_TRUE(gates::cphase(0.7).is_diagonal());
}

TEST(StandardGates, RandomSu2IsUnitary) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(gates::random_su2(rng).is_unitary(1e-9));
  }
}

TEST(StandardGates, ParameterizedKindsThrowInStandardMatrix) {
  EXPECT_THROW(standard_matrix(GateKind::kRz), Error);
  EXPECT_THROW(standard_matrix(GateKind::kCustom), Error);
  EXPECT_THROW(standard_arity(GateKind::kCustom), Error);
}

TEST(StandardGates, NamesAreUniqueAndStable) {
  EXPECT_EQ(gate_name(GateKind::kSqrtX), "X_1_2");
  EXPECT_EQ(gate_name(GateKind::kSqrtY), "Y_1_2");
  EXPECT_EQ(gate_name(GateKind::kCZ), "CZ");
  EXPECT_NE(gate_name(GateKind::kS), gate_name(GateKind::kSdg));
}

}  // namespace
}  // namespace quasar
