#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "runtime/distributed.hpp"
#include "sched/schedule_io.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

Circuit test_circuit() {
  SupremacyOptions o;
  o.rows = 3;
  o.cols = 3;
  o.depth = 14;
  o.seed = 3;
  return make_supremacy_circuit(o);
}

TEST(ScheduleIo, RoundTripPreservesStructure) {
  const Circuit c = test_circuit();
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  const Schedule original = make_schedule(c, o);
  const Schedule loaded =
      schedule_from_string(schedule_to_string(original), c);

  ASSERT_EQ(loaded.stages.size(), original.stages.size());
  EXPECT_EQ(loaded.num_qubits, original.num_qubits);
  EXPECT_EQ(loaded.num_local, original.num_local);
  EXPECT_EQ(loaded.num_clusters(), original.num_clusters());
  for (std::size_t s = 0; s < original.stages.size(); ++s) {
    EXPECT_EQ(loaded.stages[s].qubit_to_location,
              original.stages[s].qubit_to_location);
    EXPECT_EQ(loaded.stages[s].gates, original.stages[s].gates);
    ASSERT_EQ(loaded.stages[s].clusters.size(),
              original.stages[s].clusters.size());
    for (std::size_t i = 0; i < original.stages[s].clusters.size(); ++i) {
      EXPECT_EQ(loaded.stages[s].clusters[i].qubits,
                original.stages[s].clusters[i].qubits);
      EXPECT_EQ(loaded.stages[s].clusters[i].ops,
                original.stages[s].clusters[i].ops);
      ASSERT_TRUE(loaded.stages[s].clusters[i].matrix.has_value());
      EXPECT_LT(loaded.stages[s].clusters[i].matrix->distance(
                    *original.stages[s].clusters[i].matrix),
                1e-12);
    }
  }
}

TEST(ScheduleIo, LoadedScheduleExecutesIdentically) {
  const Circuit c = test_circuit();
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 4;
  const Schedule original = make_schedule(c, o);
  const Schedule loaded =
      schedule_from_string(schedule_to_string(original), c);

  StateVector expected(9);
  reference_run(expected, c);
  DistributedSimulator sim(9, 5);
  sim.init_basis(0);
  sim.run(c, loaded);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
}

TEST(ScheduleIo, ReusableAcrossInstancesOfTheSameShape) {
  // The paper's reuse claim: the schedule of one seed drives a circuit
  // with different random single-qubit draws (same topology), because
  // the generator emits gates in the same order for the same grid/depth.
  SupremacyOptions a, b;
  a.rows = b.rows = 3;
  a.cols = b.cols = 3;
  a.depth = b.depth = 14;
  a.seed = 1;
  b.seed = 2;
  const Circuit circuit_a = make_supremacy_circuit(a);
  const Circuit circuit_b = make_supremacy_circuit(b);
  ASSERT_EQ(circuit_a.num_gates(), circuit_b.num_gates());

  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  const std::string stored = schedule_to_string(make_schedule(circuit_a, o));
  // Re-attach to the sibling instance; matrices re-fuse from circuit_b.
  const Schedule reattached = schedule_from_string(stored, circuit_b);

  StateVector expected(9);
  reference_run(expected, circuit_b);
  DistributedSimulator sim(9, 6);
  sim.init_basis(0);
  sim.run(circuit_b, reattached);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
}

TEST(ScheduleIo, RejectsMalformedInput) {
  const Circuit c = test_circuit();
  EXPECT_THROW(schedule_from_string("", c), Error);
  EXPECT_THROW(schedule_from_string("bogus 1 2 3 4\n", c), Error);
  // Wrong qubit count.
  Circuit narrow(4);
  narrow.h(0);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  const std::string text = schedule_to_string(make_schedule(c, o));
  EXPECT_THROW(schedule_from_string(text, narrow), Error);
}

TEST(ScheduleIo, RejectsIncompleteCoverage) {
  const Circuit c = test_circuit();
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  std::string text = schedule_to_string(make_schedule(c, o));
  // Truncate the last line: a gate goes missing.
  text.erase(text.rfind("cluster"));
  EXPECT_THROW(schedule_from_string(text, c), Error);
}

}  // namespace
}  // namespace quasar
