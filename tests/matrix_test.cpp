#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gates/matrix.hpp"
#include "gates/standard.hpp"

namespace quasar {
namespace {

TEST(GateMatrix, IdentityAndZero) {
  const GateMatrix id = GateMatrix::identity(2);
  EXPECT_EQ(id.num_qubits(), 2);
  EXPECT_EQ(id.dim(), 4u);
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 4; ++c) {
      EXPECT_EQ(id.at(r, c), (r == c ? Amplitude{1.0} : Amplitude{0.0}));
    }
  }
  EXPECT_EQ(GateMatrix::zero(1).at(0, 0), Amplitude{0.0});
}

TEST(GateMatrix, ConstructorValidation) {
  EXPECT_THROW(GateMatrix(3, std::vector<Amplitude>(9)), Error);
  EXPECT_THROW(GateMatrix(2, std::vector<Amplitude>(3)), Error);
}

TEST(GateMatrix, Product) {
  // X * X = I.
  const GateMatrix x = gates::x();
  EXPECT_LT((x * x).distance(GateMatrix::identity(1)), 1e-14);
  // H * X * H = Z.
  const GateMatrix h = gates::h();
  EXPECT_LT((h * x * h).distance(gates::z()), 1e-14);
}

TEST(GateMatrix, Adjoint) {
  const GateMatrix t = gates::t();
  EXPECT_LT((t * t.adjoint()).distance(GateMatrix::identity(1)), 1e-14);
  const GateMatrix y = gates::y();
  EXPECT_LT(y.adjoint().distance(y), 1e-14);  // Y is Hermitian
}

TEST(GateMatrix, KronMatchesManual) {
  // Z (high qubit) kron X (low qubit): |b1 b0> -> (-1)^b1 |b1, !b0>.
  const GateMatrix m = gates::z().kron(gates::x());
  EXPECT_EQ(m.num_qubits(), 2);
  EXPECT_EQ(m.at(0, 1), Amplitude{1.0});
  EXPECT_EQ(m.at(1, 0), Amplitude{1.0});
  EXPECT_EQ(m.at(2, 3), Amplitude{-1.0});
  EXPECT_EQ(m.at(3, 2), Amplitude{-1.0});
  EXPECT_EQ(m.at(0, 0), Amplitude{0.0});
}

TEST(GateMatrix, PermuteQubitsSwapsCnotDirection) {
  // Swapping the two qubits of CNOT turns control<->target.
  const GateMatrix cnot = gates::cnot();
  const GateMatrix flipped = cnot.permute_qubits({1, 0});
  // flipped: control = qubit 1, target = qubit 0.
  // |01> (q0=1,q1=0) stays; |10> -> |11>.
  EXPECT_EQ(flipped.at(1, 1), Amplitude{1.0});
  EXPECT_EQ(flipped.at(3, 2), Amplitude{1.0});
  EXPECT_EQ(flipped.at(2, 3), Amplitude{1.0});
}

TEST(GateMatrix, PermuteIdentityIsNoop) {
  Rng rng(3);
  const GateMatrix u = gates::random_su2(rng).kron(gates::random_su2(rng));
  EXPECT_LT(u.permute_qubits({0, 1}).distance(u), 1e-14);
}

TEST(GateMatrix, PermuteRoundTrip) {
  Rng rng(4);
  GateMatrix u = GateMatrix::identity(3);
  u = gates::random_su2(rng).embed(3, {0}) * u;
  u = gates::cnot().embed(3, {1, 2}) * u;
  const std::vector<int> perm = {2, 0, 1};
  const std::vector<int> inverse = {1, 2, 0};
  EXPECT_LT(u.permute_qubits(perm).permute_qubits(inverse).distance(u),
            1e-13);
}

TEST(GateMatrix, PermuteValidation) {
  const GateMatrix u = GateMatrix::identity(2);
  EXPECT_THROW(u.permute_qubits({0}), Error);
  EXPECT_THROW(u.permute_qubits({0, 0}), Error);
  EXPECT_THROW(u.permute_qubits({0, 2}), Error);
}

TEST(GateMatrix, EmbedLowQubitMatchesKron) {
  // Embedding X at position 0 of a 2-qubit space equals I kron X.
  const GateMatrix embedded = gates::x().embed(2, {0});
  EXPECT_LT(embedded.distance(GateMatrix::identity(1).kron(gates::x())),
            1e-14);
}

TEST(GateMatrix, EmbedHighQubitMatchesKron) {
  const GateMatrix embedded = gates::x().embed(2, {1});
  EXPECT_LT(embedded.distance(gates::x().kron(GateMatrix::identity(1))),
            1e-14);
}

TEST(GateMatrix, EmbedTwoQubitGate) {
  // CZ embedded at positions {0, 2} of 3 qubits: phase only when bits 0
  // and 2 are both 1.
  const GateMatrix m = gates::cz().embed(3, {0, 2});
  for (Index i = 0; i < 8; ++i) {
    const bool both = (i & 1) && (i & 4);
    EXPECT_EQ(m.at(i, i), (both ? Amplitude{-1.0} : Amplitude{1.0}));
  }
}

TEST(GateMatrix, EmbedValidation) {
  EXPECT_THROW(gates::x().embed(2, {2}), Error);
  EXPECT_THROW(gates::cz().embed(2, {0, 0}), Error);
  EXPECT_THROW(gates::cz().embed(3, {0}), Error);
}

TEST(GateMatrix, IsUnitary) {
  EXPECT_TRUE(gates::h().is_unitary());
  GateMatrix bad(2, {Amplitude{1.0}, Amplitude{1.0},
                     Amplitude{0.0}, Amplitude{1.0}});
  EXPECT_FALSE(bad.is_unitary());
}

TEST(GateMatrix, DiagonalDetection) {
  EXPECT_TRUE(gates::t().is_diagonal());
  EXPECT_TRUE(gates::cz().is_diagonal());
  EXPECT_FALSE(gates::h().is_diagonal());
  EXPECT_FALSE(gates::cnot().is_diagonal());
}

TEST(GateMatrix, DiagonalQubitsOfCnot) {
  // CNOT (control = qubit 0) is diagonal on the control, dense on the
  // target.
  const auto flags = gates::cnot().diagonal_qubits();
  ASSERT_EQ(flags.size(), 2u);
  EXPECT_TRUE(flags[0]);   // control
  EXPECT_FALSE(flags[1]);  // target
}

TEST(GateMatrix, DiagonalQubitsOfCz) {
  const auto flags = gates::cz().diagonal_qubits();
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
}

TEST(GateMatrix, DiagonalExtraction) {
  const auto d = gates::cz().diagonal();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[3], Amplitude{-1.0});
  EXPECT_THROW(gates::h().diagonal(), Error);
}

TEST(GateMatrix, Scale) {
  GateMatrix m = gates::z();
  m.scale(Amplitude{0.0, 1.0});
  EXPECT_EQ(m.at(0, 0), (Amplitude{0.0, 1.0}));
  EXPECT_EQ(m.at(1, 1), (Amplitude{0.0, -1.0}));
}

TEST(GateMatrix, EmbeddedProductsCommuteOnDisjointQubits) {
  Rng rng(11);
  const GateMatrix a = gates::random_su2(rng).embed(3, {0});
  const GateMatrix b = gates::random_su2(rng).embed(3, {2});
  EXPECT_LT((a * b).distance(b * a), 1e-13);
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

TEST(PhasedPermutation, DetectsPermutationGates) {
  ASSERT_TRUE(gates::x().phased_permutation().has_value());
  ASSERT_TRUE(gates::y().phased_permutation().has_value());
  ASSERT_TRUE(gates::cnot().phased_permutation().has_value());
  ASSERT_TRUE(gates::swap().phased_permutation().has_value());
  ASSERT_TRUE(gates::t().phased_permutation().has_value());  // diagonal
  EXPECT_FALSE(gates::h().phased_permutation().has_value());
  EXPECT_FALSE(gates::sqrt_x().phased_permutation().has_value());
  Rng rng(1);
  EXPECT_FALSE(gates::random_su2(rng).phased_permutation().has_value());
}

TEST(PhasedPermutation, XMapping) {
  const auto p = gates::x().phased_permutation();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->target[0], 1u);
  EXPECT_EQ(p->target[1], 0u);
  EXPECT_EQ(p->phase[0], Amplitude{1.0});
}

TEST(PhasedPermutation, YMappingCarriesPhases) {
  // Y = [[0, -i], [i, 0]]: |0> -> i|1>, |1> -> -i|0>.
  const auto p = gates::y().phased_permutation();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->target[0], 1u);
  EXPECT_EQ(p->phase[0], (Amplitude{0.0, 1.0}));
  EXPECT_EQ(p->target[1], 0u);
  EXPECT_EQ(p->phase[1], (Amplitude{0.0, -1.0}));
}

TEST(PhasedPermutation, CnotMapping) {
  // Control = qubit 0: |q1 q0>: 01 <-> 11 swap (indices 1 and 3).
  const auto p = gates::cnot().phased_permutation();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->target[0], 0u);
  EXPECT_EQ(p->target[1], 3u);
  EXPECT_EQ(p->target[2], 2u);
  EXPECT_EQ(p->target[3], 1u);
}

TEST(PhasedPermutation, RejectsNonUnitEntries) {
  GateMatrix half(2, {Amplitude{0.0}, Amplitude{0.5},
                      Amplitude{0.5}, Amplitude{0.0}});
  EXPECT_FALSE(half.phased_permutation().has_value());
}

}  // namespace
}  // namespace quasar
