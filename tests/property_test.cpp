/// Parameterized end-to-end property sweeps: the distributed simulator,
/// the baseline simulator, the scheduled single-node path, and the
/// brute-force reference must all compute the same state for randomized
/// circuits, across specialization modes, kmax values, and node counts;
/// norms stay 1; schedules stay complete.
#include <gtest/gtest.h>

#include <tuple>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "runtime/baseline.hpp"
#include "runtime/distributed.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

Circuit random_supremacy_flavoured(int n, int gates, std::uint64_t seed) {
  // Gate mix matching supremacy circuits (H, T, X^1/2, Y^1/2, CZ) plus
  // CNOTs to exercise the conditional-dense specialization.
  Rng rng(seed);
  Circuit c(n);
  for (Qubit q = 0; q < n; ++q) c.h(q);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(6));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.t(a); break;
      case 1: c.sqrt_x(a); break;
      case 2: c.sqrt_y(a); break;
      case 3: c.cz(a, b); break;
      case 4: {
        // Keep CNOT targets on the lowest locations so the baseline
        // scheme (which cannot exchange a dense 2-qubit global gate)
        // stays applicable at every l in the sweep.
        Qubit target = static_cast<Qubit>(rng.uniform_int(5));
        while (target == a) target = static_cast<Qubit>(rng.uniform_int(5));
        c.cnot(a, target);
        break;
      }
      case 5: c.h(a); break;
    }
  }
  return c;
}

using Config = std::tuple<int /*l*/, int /*kmax*/, int /*mode*/, int /*seed*/>;

class EndToEnd : public ::testing::TestWithParam<Config> {};

TEST_P(EndToEnd, AllFourEnginesAgree) {
  const auto [l, kmax, mode_int, seed] = GetParam();
  const auto mode = static_cast<SpecializationMode>(mode_int);
  const int n = 9;
  const Circuit c = random_supremacy_flavoured(n, 70, seed);

  StateVector expected(n);
  reference_run(expected, c);
  EXPECT_NEAR(expected.norm_squared(), 1.0, 1e-10);

  // Distributed with scheduling.
  ScheduleOptions so;
  so.num_local = l;
  so.kmax = kmax;
  so.specialization = mode;
  DistributedSimulator ours(n, l);
  ours.init_basis(0);
  ours.run(c, make_schedule(c, so));
  EXPECT_LT(ours.gather().max_abs_diff(expected), 1e-10);
  EXPECT_NEAR(ours.norm_squared(), 1.0, 1e-10);

  // Baseline per-gate scheme.
  if (mode != SpecializationMode::kNone) {
    BaselineOptions bo;
    bo.specialization = mode;
    BaselineSimulator base(n, l, bo);
    base.init_basis(0);
    base.run(c);
    EXPECT_LT(base.gather().max_abs_diff(expected), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEnd,
    ::testing::Combine(::testing::Values(5, 6, 7),
                       ::testing::Values(2, 4),
                       ::testing::Values(1, 2),  // kWorstCase, kFull
                       ::testing::Values(100, 200)),
    [](const auto& info) {
      return "l" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

class SupremacySchedule : public ::testing::TestWithParam<int /*depth*/> {};

TEST_P(SupremacySchedule, SwapCountGrowsSlowlyWithDepth) {
  // Fig. 5a's property at test scale: swap count is a staircase far
  // below the per-cycle communication count, and is (mostly) independent
  // of the local qubit count.
  const int depth = GetParam();
  SupremacyOptions so;
  so.rows = 4;
  so.cols = 3;
  so.depth = depth;
  so.seed = 1;
  const Circuit c = make_supremacy_circuit(so);

  int swaps_at[2];
  int i = 0;
  for (int l : {8, 9}) {
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 4;
    o.build_matrices = false;
    swaps_at[i++] = make_schedule(c, o).num_swaps();
  }
  EXPECT_LE(std::abs(swaps_at[0] - swaps_at[1]), 1)
      << "swap count should be mostly independent of local qubits";
  EXPECT_LE(swaps_at[1], depth / 4 + 2);
}

INSTANTIATE_TEST_SUITE_P(Depths, SupremacySchedule,
                         ::testing::Values(10, 20, 30, 40));

TEST(Property, EntropyInvariantUnderSchedulingChoices) {
  // The computed physics must not depend on kmax / specialization.
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 18;
  so.seed = 77;
  const Circuit c = make_supremacy_circuit(so);
  double reference_entropy = -1.0;
  for (int kmax : {2, 4}) {
    for (auto mode : {SpecializationMode::kWorstCase,
                      SpecializationMode::kFull}) {
      ScheduleOptions o;
      o.num_local = 6;
      o.kmax = kmax;
      o.specialization = mode;
      DistributedSimulator sim(9, 6);
      sim.init_basis(0);
      sim.run(c, make_schedule(c, o));
      const double s = sim.entropy();
      if (reference_entropy < 0) {
        reference_entropy = s;
      } else {
        EXPECT_NEAR(s, reference_entropy, 1e-9);
      }
    }
  }
}

TEST(Property, SchedulingNeverChangesTotalGateCount) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Circuit c = random_supremacy_flavoured(8, 50, seed);
    for (int l : {4, 6, 8}) {
      for (bool adjust : {false, true}) {
        ScheduleOptions o;
        o.num_local = l;
        o.kmax = 3;
        o.adjust_swaps = adjust;
        o.build_matrices = false;
        const Schedule s = make_schedule(c, o);
        EXPECT_EQ(s.num_gates(), c.num_gates());
      }
    }
  }
}

TEST(Property, FusedClusterMatricesAreUnitary) {
  const Circuit c = random_supremacy_flavoured(8, 60, 31);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  const Schedule s = make_schedule(c, o);
  for (const Stage& stage : s.stages) {
    for (const Cluster& cl : stage.clusters) {
      ASSERT_TRUE(cl.matrix.has_value());
      EXPECT_TRUE(cl.matrix->is_unitary(1e-8));
      EXPECT_EQ(cl.diagonal, cl.matrix->is_diagonal());
    }
  }
}

}  // namespace
}  // namespace quasar
