#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"
#include "kernels/naive.hpp"
#include "kernels/simd.hpp"
#include "simulator/reference.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

/// Fills a state with a random normalized vector.
void randomize(StateVector& state, Rng& rng) {
  for (Index i = 0; i < state.size(); ++i) {
    state[i] = Amplitude{rng.normal(), rng.normal()};
  }
  const Real norm = std::sqrt(state.norm_squared());
  for (Index i = 0; i < state.size(); ++i) state[i] /= norm;
}

/// Random dense unitary on k qubits.
GateMatrix random_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 2; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cnot().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}

/// Random distinct bit-locations.
std::vector<int> random_locations(int k, int n, Rng& rng) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i) {
    std::swap(all[i], all[i + rng.uniform_int(n - i)]);
  }
  return std::vector<int>(all.begin(), all.begin() + k);
}

TEST(PreparedGate, SortsQubitsAndPermutesMatrix) {
  // CNOT with control at location 5, target at location 2: the prepared
  // gate must act identically to the reference.
  const GateMatrix cnot = gates::cnot();
  PreparedGate prepared = prepare_gate(cnot, {5, 2});
  EXPECT_EQ(prepared.qubits, (std::vector<int>{2, 5}));

  Rng rng(1);
  StateVector a(7), b(7);
  randomize(a, rng);
  for (Index i = 0; i < a.size(); ++i) b[i] = a[i];
  apply_gate_scalar(a.data(), 7, prepared);
  reference_apply(b, cnot, {5, 2});
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

TEST(PreparedGate, DiagonalDetected) {
  const PreparedGate t = prepare_gate(gates::t(), {3});
  EXPECT_TRUE(t.diagonal);
  ASSERT_EQ(t.diag.size(), 2u);
  const PreparedGate h = prepare_gate(gates::h(), {3});
  EXPECT_FALSE(h.diagonal);
}

TEST(PreparedGate, ContiguityDetected) {
  EXPECT_EQ(prepare_gate(GateMatrix::identity(3), {0, 1, 2}).contig_run, 8u);
  EXPECT_EQ(prepare_gate(GateMatrix::identity(3), {0, 1, 5}).contig_run, 4u);
  EXPECT_EQ(prepare_gate(GateMatrix::identity(3), {1, 2, 3}).contig_run, 1u);
}

TEST(PreparedGate, RejectsDuplicates) {
  EXPECT_THROW(prepare_gate(gates::cz(), {2, 2}), Error);
  EXPECT_THROW(prepare_gate(gates::h(), {0, 1}), Error);
}

TEST(PreparedGate, FmaExpansionLayout) {
  const PreparedGate g = prepare_gate(gates::t(), {0});
  // col_a holds (Re, Im) column-major; col_b holds (-Im, Re).
  const Amplitude t11 = gates::t().at(1, 1);
  const Index e = (1 * 2 + 1) * 2;  // column 1, row 1
  EXPECT_DOUBLE_EQ(g.col_a[e + 0], t11.real());
  EXPECT_DOUBLE_EQ(g.col_a[e + 1], t11.imag());
  EXPECT_DOUBLE_EQ(g.col_b[e + 0], -t11.imag());
  EXPECT_DOUBLE_EQ(g.col_b[e + 1], t11.real());
}

// ---------------------------------------------------------------------
// Differential sweep: every backend vs the brute-force reference, over
// all k and representative qubit placements.
// ---------------------------------------------------------------------

using SweepParam = std::tuple<int /*n*/, int /*k*/, int /*seed*/>;

class KernelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelSweep, AllBackendsMatchReference) {
  const auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n * 10 + k);
  const GateMatrix u = random_unitary(k, rng);
  const auto locations = random_locations(k, n, rng);
  const PreparedGate prepared = prepare_gate(u, locations);

  StateVector original(n);
  randomize(original, rng);
  StateVector expected = original;
  reference_apply(expected, u, locations);

  {
    StateVector s = original;
    apply_gate_scalar(s.data(), n, prepared);
    EXPECT_LT(s.max_abs_diff(expected), 1e-12) << "scalar backend";
  }
  {
    StateVector s = original;
    ApplyOptions options;
    options.backend = KernelBackend::kAuto;
    apply_gate(s.data(), n, prepared, options);
    EXPECT_LT(s.max_abs_diff(expected), 1e-12) << "auto backend";
  }
  if (detail::have_avx512()) {
    StateVector s = original;
    if (detail::apply_gate_avx512(s.data(), n, prepared, 0, 0)) {
      EXPECT_LT(s.max_abs_diff(expected), 1e-12) << "avx512 backend";
    }
  }
  if (detail::have_avx2()) {
    StateVector s = original;
    if (detail::apply_gate_avx2(s.data(), n, prepared, 0, 0)) {
      EXPECT_LT(s.max_abs_diff(expected), 1e-12) << "avx2 backend";
    }
  }
}

TEST_P(KernelSweep, BlockRowVariantsMatch) {
  const auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP();
  Rng rng(seed + 99);
  const GateMatrix u = random_unitary(k, rng);
  const auto locations = random_locations(k, n, rng);
  const PreparedGate prepared = prepare_gate(u, locations);

  StateVector original(n);
  randomize(original, rng);
  StateVector expected = original;
  reference_apply(expected, u, locations);

  for (int br : {1, 2, 4, 8}) {
    StateVector s = original;
    ApplyOptions options;
    options.block_rows = br;
    apply_gate(s.data(), n, prepared, options);
    EXPECT_LT(s.max_abs_diff(expected), 1e-12) << "block_rows=" << br;
  }
}

TEST_P(KernelSweep, ThreadCountsAgree) {
  const auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP();
  Rng rng(seed + 7);
  const GateMatrix u = random_unitary(k, rng);
  const auto locations = random_locations(k, n, rng);
  const PreparedGate prepared = prepare_gate(u, locations);

  StateVector a(n), b(n);
  randomize(a, rng);
  for (Index i = 0; i < a.size(); ++i) b[i] = a[i];
  ApplyOptions one, two;
  one.num_threads = 1;
  two.num_threads = 2;
  apply_gate(a.data(), n, prepared, one);
  apply_gate(b.data(), n, prepared, two);
  EXPECT_LT(a.max_abs_diff(b), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelSweep,
    ::testing::Combine(::testing::Values(4, 7, 10),
                       ::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Exhaustive single-qubit placement: every bit-location of a 9-qubit
// state, both the strided SIMD path (q >= width) and the fallback.
class K1Placement : public ::testing::TestWithParam<int> {};

TEST_P(K1Placement, MatchesReferenceEverywhere) {
  const int q = GetParam();
  const int n = 9;
  Rng rng(q);
  const GateMatrix u = gates::random_su2(rng);
  StateVector s(n), expected(n);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, u, {q});
  apply_gate(s.data(), n, prepare_gate(u, {q}), {});
  EXPECT_LT(s.max_abs_diff(expected), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(AllLocations, K1Placement, ::testing::Range(0, 9));

TEST(DiagonalKernel, MatchesReference) {
  Rng rng(5);
  const int n = 8;
  // Product of diagonal gates: CZ(1,6) composed with T on 4.
  const GateMatrix cz = gates::cz();
  StateVector s(n), expected(n);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, cz, {1, 6});
  reference_apply(expected, gates::t(), {4});

  apply_diagonal(s.data(), n, prepare_gate(cz, {1, 6}), {});
  apply_diagonal(s.data(), n, prepare_gate(gates::t(), {4}), {});
  EXPECT_LT(s.max_abs_diff(expected), 1e-14);
}

TEST(DiagonalKernel, RejectsDenseGate) {
  StateVector s(3);
  EXPECT_THROW(apply_diagonal(s.data(), 3, prepare_gate(gates::h(), {0}), {}),
               Error);
}

TEST(DiagonalKernel, DispatcherRoutesDiagonalGates) {
  // apply_gate on a diagonal gate must not disturb non-participating
  // amplitudes (phase-only fast path).
  Rng rng(6);
  StateVector s(6), expected(6);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, gates::cz(), {2, 4});
  apply_gate(s.data(), 6, prepare_gate(gates::cz(), {2, 4}), {});
  EXPECT_LT(s.max_abs_diff(expected), 1e-14);
}

TEST(GlobalPhase, MultipliesEveryAmplitude) {
  StateVector s(5);
  s.set_uniform_superposition();
  apply_global_phase(s.data(), 5, Amplitude{0.0, 1.0});
  const double expected = std::pow(2.0, -2.5);
  for (Index i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s[i].real(), 0.0, 1e-15);
    EXPECT_NEAR(s[i].imag(), expected, 1e-15);
  }
}

TEST(NaiveKernels, TwoVectorMatchesReference) {
  Rng rng(8);
  const int n = 8;
  const GateMatrix u = gates::random_su2(rng);
  StateVector in(n), expected(n);
  randomize(in, rng);
  for (Index i = 0; i < in.size(); ++i) expected[i] = in[i];
  reference_apply(expected, u, {5});
  StateVector out(n);
  apply_single_qubit_two_vector(in.data(), out.data(), n, u, 5);
  EXPECT_LT(out.max_abs_diff(expected), 1e-13);
}

TEST(NaiveKernels, InplaceMatchesReference) {
  Rng rng(9);
  const int n = 8;
  const GateMatrix u = gates::random_su2(rng);
  StateVector s(n), expected(n);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, u, {0});
  apply_single_qubit_inplace_naive(s.data(), n, u, 0);
  EXPECT_LT(s.max_abs_diff(expected), 1e-13);
}

TEST(Kernels, NormPreservedOverLongRandomSequence) {
  Rng rng(10);
  const int n = 12;
  StateVector s(n);
  s.set_basis_state(0);
  for (int step = 0; step < 50; ++step) {
    const int k = 1 + static_cast<int>(rng.uniform_int(5));
    const GateMatrix u = random_unitary(k, rng);
    apply_gate(s.data(), n, prepare_gate(u, random_locations(k, n, rng)), {});
  }
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-10);
}

TEST(Kernels, DispatcherValidation) {
  StateVector s(3);
  EXPECT_THROW(
      apply_gate(s.data(), 3, prepare_gate(GateMatrix::identity(4),
                                           {0, 1, 2, 3}), {}),
      Error);
  EXPECT_THROW(apply_gate(s.data(), 3, prepare_gate(gates::h(), {5}), {}),
               Error);
}

TEST(Kernels, FlopAccounting) {
  EXPECT_DOUBLE_EQ(flops_per_amplitude(1), 14.0);  // paper Sec. 3.1
  EXPECT_DOUBLE_EQ(operational_intensity(1), 14.0 / 32.0);
  EXPECT_DOUBLE_EQ(flops_per_amplitude(4), 126.0);
}

TEST(Kernels, BackendNameIsConsistent) {
  const std::string name = simd_backend_name();
  if (detail::have_avx512()) {
    EXPECT_EQ(name, "avx512");
    EXPECT_EQ(simd_complex_width(), 4);
  } else if (detail::have_avx2()) {
    EXPECT_EQ(name, "avx2");
    EXPECT_EQ(simd_complex_width(), 2);
  } else {
    EXPECT_EQ(name, "scalar");
    EXPECT_EQ(simd_complex_width(), 1);
  }
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

// The contiguous direct-GEMV fast path (gate on bit-locations 0..k-1
// reads and writes the state in place, no gather buffer) — exercised
// explicitly for every k and backend.
class ContiguousFastPath : public ::testing::TestWithParam<int /*k*/> {};

TEST_P(ContiguousFastPath, MatchesReference) {
  const int k = GetParam();
  const int n = 9;
  Rng rng(400 + k);
  const GateMatrix u = random_unitary(k, rng);
  std::vector<int> locations(k);
  for (int j = 0; j < k; ++j) locations[j] = j;
  const PreparedGate gate = prepare_gate(u, locations);
  ASSERT_EQ(gate.contig_run, gate.dim);  // fully contiguous

  StateVector s(n), expected(n);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, u, locations);
  apply_gate(s.data(), n, gate, {});
  EXPECT_LT(s.max_abs_diff(expected), 1e-12);

  // Forcing row blocking below full rows must take the buffered path
  // and still agree.
  StateVector blocked(n);
  randomize(blocked, rng);
  StateVector blocked_expected = blocked;
  for (Index i = 0; i < blocked.size(); ++i) {
    blocked_expected[i] = blocked[i];
  }
  reference_apply(blocked_expected, u, locations);
  ApplyOptions options;
  options.block_rows = 1;
  apply_gate(blocked.data(), n, gate, options);
  EXPECT_LT(blocked.max_abs_diff(blocked_expected), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ContiguousFastPath,
                         ::testing::Range(1, 7));

TEST(ContiguousFastPath, PartialPrefixUsesBufferedPath) {
  // Gate on {0, 1, 5}: contiguous run of 4 amplitudes, but not fully
  // contiguous — must still be exact through the gather/scatter path.
  Rng rng(500);
  const GateMatrix u = random_unitary(3, rng);
  const PreparedGate gate = prepare_gate(u, {0, 1, 5});
  EXPECT_EQ(gate.contig_run, 4u);
  EXPECT_NE(gate.contig_run, gate.dim);

  StateVector s(8), expected(8);
  randomize(s, rng);
  for (Index i = 0; i < s.size(); ++i) expected[i] = s[i];
  reference_apply(expected, u, {0, 1, 5});
  apply_gate(s.data(), 8, gate, {});
  EXPECT_LT(s.max_abs_diff(expected), 1e-12);
}

}  // namespace
}  // namespace quasar
