#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/rng.hpp"
#include "kernels/permute.hpp"
#include "kernels/swap.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

StateVector random_state(int n, std::uint64_t seed) {
  StateVector s(n);
  Rng rng(seed);
  for (Index i = 0; i < s.size(); ++i) {
    s[i] = Amplitude{rng.normal(), rng.normal()};
  }
  return s;
}

/// Index-level oracle: new[j] = old[pi(j)] with pi(j) built bit by bit
/// from the permutation convention (output bit b takes input bit
/// perm[b]), then a scalar phase.
StateVector permute_oracle(const StateVector& s, const std::vector<int>& perm,
                           Amplitude phase) {
  const int n = s.num_qubits();
  StateVector out(n);
  for (Index j = 0; j < s.size(); ++j) {
    Index src = 0;
    for (int b = 0; b < n; ++b) {
      src |= static_cast<Index>(get_bit(j, b)) << perm[b];
    }
    out[j] = s[src] * phase;
  }
  return out;
}

std::vector<int> random_perm(int n, Rng& rng) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.uniform_real() * (i + 1));
    std::swap(perm[i], perm[std::min(j, i)]);
  }
  return perm;
}

TEST(Permute, PlanIdentity) {
  std::vector<int> perm{0, 1, 2, 3};
  const PermutePlan plan = plan_bit_permutation(4, perm);
  EXPECT_TRUE(plan.identity);
  EXPECT_EQ(plan.brick_bits, 4);
}

TEST(Permute, PlanBrickBits) {
  // Low two locations fixed => bricks of 4 amplitudes.
  std::vector<int> perm{0, 1, 3, 2, 4};
  const PermutePlan plan = plan_bit_permutation(5, perm);
  EXPECT_FALSE(plan.identity);
  EXPECT_EQ(plan.brick_bits, 2);
  EXPECT_EQ(plan.num_slots, 8u);
}

TEST(Permute, Validation) {
  EXPECT_THROW(plan_bit_permutation(3, {0, 1}), Error);        // size
  EXPECT_THROW(plan_bit_permutation(3, {0, 1, 3}), Error);     // range
  EXPECT_THROW(plan_bit_permutation(3, {0, 1, 1}), Error);     // not bijective
}

TEST(Permute, MatchesSwapChainOracle) {
  // A permutation decomposed into transpositions applied with the seed
  // apply_bit_swap kernel must agree with the single fused sweep.
  const int n = 10;
  StateVector fused = random_state(n, 11);
  StateVector chained = fused;

  // (0 7)(2 9)(4 5) as one permutation: perm[j] = source bit of j.
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[0], perm[7]);
  std::swap(perm[2], perm[9]);
  std::swap(perm[4], perm[5]);

  apply_fused_bit_permutation(fused.data(), n, perm);
  apply_bit_swap(chained.data(), n, 0, 7);
  apply_bit_swap(chained.data(), n, 2, 9);
  apply_bit_swap(chained.data(), n, 4, 5);
  EXPECT_EQ(fused.max_abs_diff(chained), 0.0);
}

TEST(Permute, RandomizedDifferential) {
  Rng rng(123);
  for (int n : {1, 2, 5, 8, 11}) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<int> perm = random_perm(n, rng);
      const StateVector original = random_state(n, 1000 + 17 * rep + n);
      const StateVector expected =
          permute_oracle(original, perm, Amplitude{1.0, 0.0});

      StateVector actual = original;
      apply_fused_bit_permutation(actual.data(), n, perm);
      EXPECT_EQ(actual.max_abs_diff(expected), 0.0)
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Permute, ScratchSizesAreEquivalent) {
  // Tiny bounce chunks (down to one amplitude) must produce the same
  // bytes as an unconstrained sweep: cycles are rotated column-chunk by
  // column-chunk.
  const int n = 9;
  Rng rng(7);
  const std::vector<int> perm = random_perm(n, rng);
  const StateVector original = random_state(n, 99);
  const StateVector expected =
      permute_oracle(original, perm, Amplitude{1.0, 0.0});

  for (std::size_t scratch : {std::size_t{1}, std::size_t{256},
                              std::size_t{1} << 20}) {
    StateVector actual = original;
    apply_fused_bit_permutation(actual.data(), n, perm,
                                Amplitude{1.0, 0.0}, 0, scratch);
    EXPECT_EQ(actual.max_abs_diff(expected), 0.0) << "scratch=" << scratch;
  }
}

TEST(Permute, PhaseFoldsIntoTheSweep) {
  const int n = 8;
  Rng rng(21);
  const std::vector<int> perm = random_perm(n, rng);
  const Amplitude phase{0.6, -0.8};
  const StateVector original = random_state(n, 5);
  const StateVector expected = permute_oracle(original, perm, phase);

  StateVector actual = original;
  apply_fused_bit_permutation(actual.data(), n, perm, phase);
  // The data motion is exact; the single phase multiply may contract
  // differently (FMA) than the oracle's, hence the tiny tolerance.
  EXPECT_LT(actual.max_abs_diff(expected), 1e-14);
}

TEST(Permute, IdentityWithPhaseIsAGlobalPhase) {
  const int n = 6;
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const Amplitude phase{0.0, 1.0};
  const StateVector original = random_state(n, 3);

  StateVector actual = original;
  apply_fused_bit_permutation(actual.data(), n, perm, phase);
  for (Index i = 0; i < original.size(); ++i) {
    EXPECT_LT(std::abs(actual[i] - original[i] * phase), 1e-14);
  }
}

TEST(Permute, ThreadCountsAgree) {
  const int n = 10;
  Rng rng(31);
  const std::vector<int> perm = random_perm(n, rng);
  const StateVector original = random_state(n, 77);

  StateVector serial = original;
  apply_fused_bit_permutation(serial.data(), n, perm,
                              Amplitude{1.0, 0.0}, 1);
  for (int threads : {2, 3, 8}) {
    StateVector parallel = original;
    apply_fused_bit_permutation(parallel.data(), n, perm,
                                Amplitude{1.0, 0.0}, threads);
    EXPECT_EQ(parallel.max_abs_diff(serial), 0.0) << threads;
  }
}

}  // namespace
}  // namespace quasar
