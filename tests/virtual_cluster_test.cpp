#include <gtest/gtest.h>

#include "core/bits.hpp"
#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "runtime/virtual_cluster.hpp"
#include "simulator/reference.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

/// Loads a full state vector into the cluster (identity layout).
void load(VirtualCluster& cluster, const StateVector& s) {
  const Index local = cluster.local_size();
  for (int r = 0; r < cluster.num_ranks(); ++r) {
    for (Index i = 0; i < local; ++i) {
      cluster.rank_data(r)[i] = s[(static_cast<Index>(r) <<
                                   cluster.num_local()) | i];
    }
  }
}

/// Reads the cluster back into a full state vector (identity layout).
StateVector unload(const VirtualCluster& cluster) {
  StateVector s(cluster.num_qubits());
  const Index local = cluster.local_size();
  for (int r = 0; r < cluster.num_ranks(); ++r) {
    for (Index i = 0; i < local; ++i) {
      s[(static_cast<Index>(r) << cluster.num_local()) | i] =
          cluster.rank_data(r)[i];
    }
  }
  return s;
}

StateVector random_state(int n, std::uint64_t seed) {
  StateVector s(n);
  Rng rng(seed);
  for (Index i = 0; i < s.size(); ++i) {
    s[i] = Amplitude{rng.normal(), rng.normal()};
  }
  return s;
}

TEST(VirtualCluster, Construction) {
  VirtualCluster c(8, 5);
  EXPECT_EQ(c.num_ranks(), 8);
  EXPECT_EQ(c.local_size(), 32u);
  EXPECT_THROW(VirtualCluster(8, 0), Error);
  EXPECT_THROW(VirtualCluster(8, 3), Error);  // g > l
}

TEST(VirtualCluster, InitBasis) {
  VirtualCluster c(6, 4);
  c.init_basis(0b101101);
  const StateVector s = unload(c);
  EXPECT_EQ(s[0b101101], Amplitude{1.0});
  EXPECT_NEAR(c.norm_squared(), 1.0, 1e-15);
}

TEST(VirtualCluster, InitUniform) {
  VirtualCluster c(6, 4);
  c.init_uniform();
  EXPECT_NEAR(c.norm_squared(), 1.0, 1e-12);
}

TEST(VirtualCluster, FullSwapEqualsBitSwaps) {
  // Swapping all g global qubits with the top-g locals (Fig. 3) must
  // equal the corresponding index bit swaps on the flat state.
  const int n = 8, l = 5, g = 3;
  StateVector original = random_state(n, 1);
  VirtualCluster c(n, l);
  load(c, original);
  c.alltoall_swap({5, 6, 7});
  // Expected: swap bits (5 <-> 2), (6 <-> 3), (7 <-> 4).
  StateVector expected = original;
  for (int i = 0; i < g; ++i) {
    reference_apply(expected, gates::swap(), {l - g + i, l + i});
  }
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-15);
  EXPECT_EQ(c.stats().alltoalls, 1u);
  EXPECT_GT(c.stats().bytes_sent_per_rank, 0u);
}

TEST(VirtualCluster, PartialGroupSwap) {
  // Swap only global location 7 with local location 4 (q = 1): group
  // all-to-alls within each pair of ranks sharing the other global bits.
  const int n = 8, l = 5;
  StateVector original = random_state(n, 2);
  VirtualCluster c(n, l);
  load(c, original);
  c.alltoall_swap({7});
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {4, 7});
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-15);
}

TEST(VirtualCluster, TwoQubitGroupSwap) {
  const int n = 7, l = 4;
  StateVector original = random_state(n, 3);
  VirtualCluster c(n, l);
  load(c, original);
  c.alltoall_swap({4, 6});
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {2, 4});
  reference_apply(expected, gates::swap(), {3, 6});
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-15);
}

TEST(VirtualCluster, SwapValidation) {
  VirtualCluster c(6, 4);
  EXPECT_THROW(c.alltoall_swap({}), Error);
  EXPECT_THROW(c.alltoall_swap({3}), Error);      // not global
  EXPECT_THROW(c.alltoall_swap({5, 4}), Error);   // not ascending
  EXPECT_THROW(c.alltoall_swap({4, 5, 6}), Error);  // only 2 globals
}

TEST(VirtualCluster, RankRenumberingPermutesGlobalBits) {
  const int n = 7, l = 4;
  StateVector original = random_state(n, 4);
  VirtualCluster c(n, l);
  load(c, original);
  // Swap global bits 0 and 2 (locations 4 and 6).
  c.renumber_ranks({2, 1, 0});
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {4, 6});
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-15);
  EXPECT_EQ(c.stats().rank_renumberings, 1u);
  EXPECT_EQ(c.stats().bytes_sent_per_rank, 0u);  // free
}

TEST(VirtualCluster, LocalSwap) {
  const int n = 7, l = 5;
  StateVector original = random_state(n, 5);
  VirtualCluster c(n, l);
  load(c, original);
  c.local_swap(1, 3);
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {1, 3});
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-15);
  EXPECT_EQ(c.stats().local_swap_sweeps, 1u);
}

TEST(VirtualCluster, PairwiseGlobalGateMatchesReference) {
  const int n = 7, l = 4;
  Rng rng(6);
  for (int location : {4, 5, 6}) {
    StateVector original = random_state(n, 10 + location);
    VirtualCluster c(n, l);
    load(c, original);
    const GateMatrix u = gates::random_su2(rng);
    c.pairwise_global_gate(u, location);
    StateVector expected = original;
    reference_apply(expected, u, {location});
    EXPECT_LT(unload(c).max_abs_diff(expected), 1e-13)
        << "location " << location;
  }
}

TEST(VirtualCluster, PairwiseStatsAccounting) {
  VirtualCluster c(6, 4);
  c.init_basis(0);
  c.pairwise_global_gate(gates::h(), 5);
  EXPECT_EQ(c.stats().pairwise_exchanges, 2u);
  // 2 exchanges x half the local state (Sec. 3.4).
  EXPECT_EQ(c.stats().bytes_sent_per_rank,
            c.local_size() * kBytesPerAmplitude);
}

TEST(VirtualCluster, FullSwapCommVolume) {
  VirtualCluster c(8, 6);
  c.init_basis(0);
  c.alltoall_swap({6, 7});
  // Each rank keeps 1/4 of its state and sends 3/4.
  EXPECT_EQ(c.stats().bytes_sent_per_rank,
            c.local_size() * 3 / 4 * kBytesPerAmplitude);
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

TEST(VirtualCluster, PermuteRanksGeneralBijection) {
  VirtualCluster c(6, 4);  // 4 ranks
  for (int r = 0; r < 4; ++r) c.rank_data(r)[0] = Amplitude(r, 0);
  // A 3-cycle (not a bit permutation): 0 -> 1 -> 2 -> 0, 3 fixed.
  c.permute_ranks({2, 0, 1, 3});
  EXPECT_EQ(c.rank_data(0)[0].real(), 2.0);
  EXPECT_EQ(c.rank_data(1)[0].real(), 0.0);
  EXPECT_EQ(c.rank_data(2)[0].real(), 1.0);
  EXPECT_EQ(c.rank_data(3)[0].real(), 3.0);
  EXPECT_EQ(c.stats().rank_renumberings, 1u);
  EXPECT_EQ(c.stats().bytes_sent_per_rank, 0u);
}

TEST(VirtualCluster, PermuteRanksValidation) {
  VirtualCluster c(6, 4);
  EXPECT_THROW(c.permute_ranks({0, 1}), Error);         // wrong size
  EXPECT_THROW(c.permute_ranks({0, 0, 1, 2}), Error);   // not a bijection
  EXPECT_THROW(c.permute_ranks({0, 1, 2, 9}), Error);   // out of range
}

TEST(VirtualCluster, ChunkedSwapBitExactAcrossBounceSizes) {
  // The in-place exchange must be bit-exact for every group size q and
  // for bounce buffers from generous down to smaller than one block
  // (the clamp still grants one amplitude per thread).
  const int n = 9, l = 6, g = 3;
  const StateVector original = random_state(n, 20);
  for (int q = 1; q <= g; ++q) {
    std::vector<int> globals;
    for (int i = 0; i < q; ++i) globals.push_back(l + i);
    for (std::size_t bounce : {std::size_t{1} << 26, std::size_t{4096},
                               std::size_t{64}, std::size_t{1}}) {
      StorageOptions storage;
      storage.bounce_buffer_bytes = bounce;
      VirtualCluster c(n, l, storage);
      load(c, original);
      c.alltoall_swap(globals);
      StateVector expected = original;
      for (int i = 0; i < q; ++i) {
        reference_apply(expected, gates::swap(), {l - q + i, l + i});
      }
      EXPECT_EQ(unload(c).max_abs_diff(expected), 0.0)
          << "q=" << q << " bounce=" << bounce;
    }
  }
}

TEST(VirtualCluster, GeneralizedSwapAtArbitraryLocalPositions) {
  // Pairing globals {6, 8} with local positions {1, 3} swaps index bits
  // (1 <-> 6) and (3 <-> 8) directly — no parking chain needed.
  const int n = 9, l = 6;
  const StateVector original = random_state(n, 21);
  VirtualCluster c(n, l);
  load(c, original);
  c.alltoall_swap({6, 8}, {1, 3});
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {1, 6});
  reference_apply(expected, gates::swap(), {3, 8});
  EXPECT_EQ(unload(c).max_abs_diff(expected), 0.0);
  EXPECT_EQ(c.stats().alltoalls, 1u);
  // Byte volume is independent of which local positions carried it.
  EXPECT_EQ(c.stats().bytes_sent_per_rank,
            (c.local_size() - c.local_size() / 4) * kBytesPerAmplitude);
}

TEST(VirtualCluster, PeakBounceIsTrackedAndBounded) {
  const int n = 9, l = 6;
  StorageOptions storage;
  storage.bounce_buffer_bytes = std::size_t{1} << 12;  // 4 KB
  VirtualCluster c(n, l, storage);
  load(c, random_state(n, 22));
  c.alltoall_swap({6, 7, 8});
  EXPECT_GT(c.stats().peak_bounce_bytes, 0u);
  EXPECT_LE(c.stats().peak_bounce_bytes, storage.bounce_buffer_bytes);
}

TEST(VirtualCluster, LocalPermuteMatchesSwapChain) {
  const int n = 8, l = 5;
  const StateVector original = random_state(n, 23);
  VirtualCluster c(n, l), oracle(n, l);
  load(c, original);
  load(oracle, original);
  // Local 3-cycle 0 -> 2 -> 4 -> 0 as a permutation: location j takes
  // what perm[j] held.
  std::vector<int> perm{4, 1, 0, 3, 2};
  c.local_permute(perm);
  oracle.local_swap(0, 2);
  oracle.local_swap(0, 4);
  EXPECT_EQ(unload(c).max_abs_diff(unload(oracle)), 0.0);
  EXPECT_EQ(c.stats().local_permutation_sweeps, 1u);
  EXPECT_EQ(c.stats().local_swap_sweeps, 0u);
  EXPECT_EQ(c.stats().local_permutation_bytes,
            static_cast<std::uint64_t>(c.num_ranks()) * c.local_size() *
                kBytesPerAmplitude);
}

TEST(VirtualCluster, LocalPermuteFoldsPerRankPhases) {
  const int n = 7, l = 5;
  const StateVector original = random_state(n, 24);
  VirtualCluster c(n, l);
  load(c, original);
  std::vector<Amplitude> phases{{1.0, 0.0}, {0.0, 1.0},
                                {-1.0, 0.0}, {0.6, 0.8}};
  std::vector<int> perm{1, 0, 2, 3, 4};  // swap locals 0 and 1
  c.local_permute(perm, &phases);
  StateVector expected = original;
  reference_apply(expected, gates::swap(), {0, 1});
  for (Index i = 0; i < expected.size(); ++i) {
    expected[i] *= phases[i >> l];
  }
  EXPECT_LT(unload(c).max_abs_diff(expected), 1e-14);
}

TEST(VirtualCluster, LocalPermuteIdentityIsFree) {
  VirtualCluster c(6, 4);
  c.init_uniform();
  c.local_permute({0, 1, 2, 3});
  EXPECT_EQ(c.stats().local_permutation_sweeps, 0u);
  EXPECT_EQ(c.stats().local_permutation_bytes, 0u);
}

}  // namespace
}  // namespace quasar
