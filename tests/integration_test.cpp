/// End-to-end pipeline tests: the full user workflow — generate, strip,
/// serialize, schedule, persist the schedule, execute on every engine
/// (single-node gate-by-gate, single-node fused, distributed in memory,
/// distributed on disk, baseline, fp32) — all agreeing on the physics.
#include <gtest/gtest.h>

#include <tuple>

#include "circuit/analysis.hpp"
#include "circuit/io.hpp"
#include "circuit/supremacy.hpp"
#include "fp32/simulator_f32.hpp"
#include "runtime/baseline.hpp"
#include "runtime/distributed.hpp"
#include "sched/executor.hpp"
#include "sched/schedule_io.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

using Workload = std::tuple<int /*rows*/, int /*cols*/, int /*depth*/,
                            int /*seed*/>;

class Pipeline : public ::testing::TestWithParam<Workload> {};

TEST_P(Pipeline, AllEnginesAgreeEndToEnd) {
  const auto [rows, cols, depth, seed] = GetParam();
  const int n = rows * cols;
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = depth;
  so.seed = static_cast<std::uint64_t>(seed);
  so.initial_hadamards = false;

  // Generate -> strip -> circuit-text round trip.
  const Circuit generated =
      strip_trailing_diagonals(make_supremacy_circuit(so));
  const Circuit circuit = circuit_from_string(circuit_to_string(generated));
  ASSERT_EQ(circuit.num_gates(), generated.num_gates());

  // Reference: plain gate-by-gate from the uniform state.
  StateVector reference(n);
  reference.set_uniform_superposition();
  Simulator plain(reference);
  plain.run(circuit);
  const Real reference_entropy = entropy(reference);

  // Single-node fused (with qubit mapping).
  {
    StateVector fused(n);
    fused.set_uniform_superposition();
    run_fused(fused, circuit);
    EXPECT_LT(fused.max_abs_diff(reference), 1e-10) << "fused";
  }

  // Distributed, schedule persisted and re-loaded, memory and disk.
  const int l = n - 3;
  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 4;
  const Schedule schedule = schedule_from_string(
      schedule_to_string(make_schedule(circuit, sched)), circuit);

  for (StorageMedium medium :
       {StorageMedium::kMemory, StorageMedium::kDisk}) {
    StorageOptions storage;
    storage.medium = medium;
    DistributedSimulator sim(n, l, {}, storage);
    sim.init_uniform();
    sim.run(circuit, schedule);
    EXPECT_LT(sim.gather().max_abs_diff(reference), 1e-10)
        << "medium " << static_cast<int>(medium);
    EXPECT_NEAR(sim.entropy(), reference_entropy, 1e-9);
    EXPECT_EQ(sim.stats().alltoalls,
              static_cast<std::uint64_t>(schedule.num_swaps()));
  }

  // Baseline scheme.
  {
    BaselineSimulator base(n, l);
    base.init_uniform();
    base.run(circuit);
    EXPECT_LT(base.gather().max_abs_diff(reference), 1e-10) << "baseline";
  }

  // Single precision tracks the double result.
  {
    StateVectorF f(n);
    f.set_uniform_superposition();
    SimulatorF fsim(f);
    fsim.run(circuit);
    EXPECT_LT(f.max_abs_diff(reference), 1e-4) << "fp32";
    EXPECT_NEAR(f.entropy(), reference_entropy, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Pipeline,
    ::testing::Values(Workload{3, 3, 14, 1}, Workload{2, 5, 18, 2},
                      Workload{4, 3, 12, 3}, Workload{2, 4, 25, 4}),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Pipeline, NoSpecializationModeIsStillCorrect) {
  // kNone forces every gate's qubits local — worst communication, same
  // physics.
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 14;
  so.seed = 9;
  const Circuit c = make_supremacy_circuit(so);
  StateVector expected(9);
  Simulator sim(expected);
  sim.run(c);

  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  o.specialization = SpecializationMode::kNone;
  const Schedule s_none = make_schedule(c, o);
  o.specialization = SpecializationMode::kFull;
  const Schedule s_full = make_schedule(c, o);
  EXPECT_GE(s_none.num_swaps(), s_full.num_swaps());

  DistributedSimulator dist(9, 6);
  dist.init_basis(0);
  dist.run(c, s_none);
  EXPECT_LT(dist.gather().max_abs_diff(expected), 1e-10);
}

TEST(Pipeline, SamplingConsistentAcrossEngines) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 4;
  so.depth = 20;
  so.seed = 5;
  const Circuit c = make_supremacy_circuit(so);
  const int n = 12;

  StateVector single(n);
  Simulator sim(single);
  sim.run(c);

  ScheduleOptions o;
  o.num_local = 8;
  o.kmax = 4;
  DistributedSimulator dist(n, 8);
  dist.init_basis(0);
  dist.run(c, make_schedule(c, o));

  // XEB statistics of both samplers against the single-node state agree.
  Rng rng_a(1), rng_b(2);
  const auto sa = sample_outcomes(single, 3000, rng_a);
  const auto sb = dist.sample(3000, rng_b);
  EXPECT_NEAR(porter_thomas_test(single, sa),
              porter_thomas_test(single, sb), 0.2);
}

TEST(Pipeline, DeepCircuitStaysNormalizedEverywhere) {
  // Depth-50: many stages, many swaps, long fusion chains.
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 4;
  so.depth = 50;
  so.seed = 6;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 4;
  const Schedule s = make_schedule(c, o);
  EXPECT_GT(s.num_swaps(), 1);

  DistributedSimulator sim(8, 5);
  sim.init_basis(0);
  sim.run(c, s);
  EXPECT_NEAR(sim.norm_squared(), 1.0, 1e-9);

  StateVector expected(8);
  Simulator single(expected);
  single.run(c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-9);
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

TEST(Pipeline, DistributedWithQubitMappingHeuristic) {
  // qubit_mapping permutes the first stage's local bit-locations; the
  // distributed engine must realize that layout with local swaps before
  // any work and still produce the exact state.
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 11;
  const Circuit c = make_supremacy_circuit(so);
  StateVector expected(9);
  Simulator sim(expected);
  sim.run(c);

  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  o.qubit_mapping = true;
  const Schedule s = make_schedule(c, o);
  DistributedSimulator dist(9, 6);
  dist.init_basis(0);
  dist.run(c, s);
  EXPECT_LT(dist.gather().max_abs_diff(expected), 1e-10);
  // Mapping must not add communication.
  ScheduleOptions plain = o;
  plain.qubit_mapping = false;
  EXPECT_EQ(s.num_swaps(), make_schedule(c, plain).num_swaps());
}

}  // namespace
}  // namespace quasar
