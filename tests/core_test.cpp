#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timing.hpp"

namespace quasar {
namespace {

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(Index{1} << 40), 40);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
}

TEST(Bits, InsertZeroBit) {
  EXPECT_EQ(insert_zero_bit(0b1011, 2), 0b10011u);
  EXPECT_EQ(insert_zero_bit(0b1011, 0), 0b10110u);
  EXPECT_EQ(insert_zero_bit(0, 5), 0u);
  EXPECT_EQ(insert_zero_bit(0b111, 3), 0b111u);
}

TEST(Bits, GetSetBit) {
  EXPECT_EQ(get_bit(0b100, 2), 1);
  EXPECT_EQ(get_bit(0b100, 1), 0);
  EXPECT_EQ(set_bit(0b100, 0, 1), 0b101u);
  EXPECT_EQ(set_bit(0b101, 0, 0), 0b100u);
  EXPECT_EQ(set_bit(0b101, 2, 1), 0b101u);
}

TEST(IndexExpander, ExpandsAroundPositions) {
  IndexExpander expander({1, 3});
  // Counter bits fill positions 0, 2, 4, ... skipping 1 and 3.
  EXPECT_EQ(expander.expand(0b000), 0b00000u);
  EXPECT_EQ(expander.expand(0b001), 0b00001u);
  EXPECT_EQ(expander.expand(0b010), 0b00100u);
  EXPECT_EQ(expander.expand(0b011), 0b00101u);
  EXPECT_EQ(expander.expand(0b100), 0b10000u);
}

TEST(IndexExpander, ExpandCollapseRoundTrip) {
  IndexExpander expander({0, 2, 5});
  for (Index i = 0; i < 256; ++i) {
    const Index x = expander.expand(i);
    EXPECT_EQ(get_bit(x, 0), 0);
    EXPECT_EQ(get_bit(x, 2), 0);
    EXPECT_EQ(get_bit(x, 5), 0);
    EXPECT_EQ(expander.collapse(x), i);
  }
}

TEST(IndexExpander, EnumeratesAllBaseIndices) {
  IndexExpander expander({1, 2});
  std::set<Index> seen;
  for (Index i = 0; i < 16; ++i) seen.insert(expander.expand(i));
  EXPECT_EQ(seen.size(), 16u);  // distinct
  for (Index x : seen) {
    EXPECT_EQ(x & 0b110u, 0u);  // zeros at positions 1, 2
  }
}

TEST(IndexExpander, RejectsUnsortedPositions) {
  EXPECT_THROW(IndexExpander({3, 1}), Error);
  EXPECT_THROW(IndexExpander({1, 1}), Error);
}

TEST(Bits, GatherScatterRoundTrip) {
  const std::vector<int> qs = {0, 3, 4};
  for (Index x = 0; x < 8; ++x) {
    const Index scattered = scatter_bits(x, qs);
    EXPECT_EQ(gather_bits(scattered, qs), x);
  }
  EXPECT_EQ(scatter_bits(0b101, qs), (Index{1} << 0) | (Index{1} << 4));
  EXPECT_EQ(gather_bits(0b10001, qs), 0b101u);
}

TEST(Bits, GateOffsets) {
  const auto offsets = make_gate_offsets({1, 4});
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], Index{1} << 1);
  EXPECT_EQ(offsets[2], Index{1} << 4);
  EXPECT_EQ(offsets[3], (Index{1} << 1) | (Index{1} << 4));
}

TEST(Aligned, VectorIsCacheLineAligned) {
  AlignedVector<double> v(100, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlignment, 0u);
  AlignedVector<Amplitude> w(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kSimdAlignment, 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(1000), b.uniform_int(1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.uniform_int(1 << 30) == b.uniform_int(1 << 30);
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRealRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform_real();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(7), 7u);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, SplitStreamsDecorrelate) {
  Rng parent(5);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.uniform_int(1 << 30) == b.uniform_int(1 << 30);
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SerializeRestoreRoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 17; ++i) rng.uniform_real();  // mid-stream state
  const std::string state = rng.serialize();
  Rng restored(0);
  restored.restore(state);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(rng.uniform_int(1u << 31), restored.uniform_int(1u << 31));
  }
}

TEST(Rng, RestoreContinuesTheStream) {
  // serialize() then keep drawing; a restore must continue the stream
  // exactly where the snapshot was taken (the checkpointed-sampling
  // contract): draws after restore equal draws after serialize.
  Rng rng(1234);
  for (int i = 0; i < 5; ++i) rng.normal();
  const std::string state = rng.serialize();
  std::vector<double> expected(64);
  for (double& v : expected) v = rng.uniform_real();
  rng.restore(state);
  for (const double v : expected) ASSERT_EQ(v, rng.uniform_real());
}

TEST(Rng, RestoreRejectsMalformedState) {
  Rng rng(7);
  const std::uint64_t probe = 1u << 20;
  Rng reference(7);
  EXPECT_THROW(rng.restore(""), Error);
  EXPECT_THROW(rng.restore("not numbers at all"), Error);
  EXPECT_THROW(rng.restore(rng.serialize() + " trailing_garbage"), Error);
  // A failed restore must leave the state untouched.
  EXPECT_EQ(rng.uniform_int(probe), reference.uniform_int(probe));
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    QUASAR_CHECK(1 == 2, "the message");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(Timing, TimerAdvances) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(Timing, TimeBestOfRunsAtLeastOnce) {
  int calls = 0;
  const double secs = time_best_of([&] { ++calls; }, 0.0);
  EXPECT_GE(calls, 1);
  EXPECT_GE(secs, 0.0);
}

}  // namespace
}  // namespace quasar
