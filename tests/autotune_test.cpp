#include <gtest/gtest.h>

#include "core/error.hpp"
#include "kernels/autotune.hpp"
#include "kernels/apply.hpp"

namespace quasar {
namespace {

TEST(Autotune, DefaultsAreUsable) {
  for (int k = 1; k <= 12; ++k) {
    const KernelConfig& cfg = kernel_config(k);
    EXPECT_GE(cfg.block_rows, 0);
  }
  EXPECT_THROW(kernel_config(0), Error);
  EXPECT_THROW(kernel_config(13), Error);
}

TEST(Autotune, SelectsOneVariantPerK) {
  const auto results = autotune_kernels(/*num_qubits=*/16, /*max_k=*/4,
                                        /*num_threads=*/1);
  ASSERT_FALSE(results.empty());
  for (int k = 2; k <= 4; ++k) {
    int selected = 0;
    bool any = false;
    for (const auto& r : results) {
      if (r.k != k) continue;
      any = true;
      EXPECT_GT(r.gflops, 0.0);
      selected += r.selected;
    }
    EXPECT_TRUE(any) << "k=" << k;
    EXPECT_EQ(selected, 1) << "k=" << k;
    EXPECT_TRUE(kernel_config(k).tuned);
    EXPECT_GT(kernel_config(k).block_rows, 0);
  }
}

TEST(Autotune, SelectedConfigIsTheFastestMeasured) {
  const auto results = autotune_kernels(16, 3, 1);
  double best = 0.0, chosen = 0.0;
  for (const auto& r : results) {
    if (r.k != 3) continue;
    best = std::max(best, r.gflops);
    if (r.selected) chosen = r.gflops;
  }
  EXPECT_DOUBLE_EQ(chosen, best);
}

TEST(Autotune, Validation) {
  EXPECT_THROW(autotune_kernels(4, 6), Error);   // state too small
  EXPECT_THROW(autotune_kernels(40, 4), Error);  // scratch too large
}

TEST(AutotuneBlocking, SelectsAndInstallsConfig) {
  const auto results = autotune_blocking(/*num_qubits=*/14,
                                         /*num_threads=*/1);
  ASSERT_FALSE(results.empty());
  int selected = 0;
  double best = 0.0, chosen = 0.0;
  for (const auto& r : results) {
    EXPECT_GE(r.block_exponent, 2);
    EXPECT_LE(r.block_exponent, 12);  // at least 4 blocks remain
    EXPECT_GT(r.gbps, 0.0);
    selected += r.selected;
    best = std::max(best, r.gbps);
    if (r.selected) chosen = r.gbps;
  }
  EXPECT_EQ(selected, 1);
  EXPECT_DOUBLE_EQ(chosen, best);
  const BlockRunConfig& cfg = block_run_config();
  EXPECT_TRUE(cfg.tuned);
  EXPECT_GE(cfg.block_exponent, 2);
  EXPECT_LE(cfg.block_exponent, 12);
  EXPECT_GE(cfg.min_run_length, 1);
  EXPECT_LE(cfg.min_run_length, 3);
}

TEST(AutotuneBlocking, Validation) {
  EXPECT_THROW(autotune_blocking(13), Error);  // below the scratch floor
  EXPECT_THROW(autotune_blocking(31), Error);  // scratch too large
}

}  // namespace
}  // namespace quasar
