/// \file telemetry_test.cpp
/// \brief Live-telemetry layer: latency histogram bucket math and
/// quantiles (including cross-thread shard merging), the time-series
/// sampler ring, progress/ETA reporting, the JSON parser, and the bench
/// baseline comparator that gates CI on perf regressions.
#include <gtest/gtest.h>
#include <omp.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/regress.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace quasar {
namespace {

/// Installs `session` globally for the enclosing scope.
class SessionGuard {
 public:
  explicit SessionGuard(obs::TraceSession& session) {
    obs::set_global_session(&session);
  }
  ~SessionGuard() { obs::set_global_session(nullptr); }
};

// ---------------------------------------------------------------------
// Histogram bucket math.

TEST(LatencyHistogram, SmallValuesAreExactBuckets) {
  // Values below 2^(kSubBits+1) = 16 map to themselves.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::latency_bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(obs::latency_bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(obs::latency_bucket_upper(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogram, BucketsPartitionTheFullRange) {
  // lower(i) <= v <= upper(i) for i = index(v), buckets contiguous.
  const std::uint64_t probes[] = {16,       17,         255,
                                  256,      1000,       4095,
                                  4096,     1u << 20,   (1u << 20) + 1,
                                  ~0ull / 3, ~0ull - 1,  ~0ull};
  for (const std::uint64_t v : probes) {
    const int i = obs::latency_bucket_index(v);
    ASSERT_GE(i, 0) << v;
    ASSERT_LT(i, obs::kNumLatencyBuckets) << v;
    EXPECT_LE(obs::latency_bucket_lower(i), v) << v;
    EXPECT_GE(obs::latency_bucket_upper(i), v) << v;
  }
  for (int i = 0; i + 1 < obs::kNumLatencyBuckets; ++i) {
    EXPECT_EQ(obs::latency_bucket_upper(i) + 1,
              obs::latency_bucket_lower(i + 1))
        << i;
  }
  // The top bucket must absorb the largest representable latency.
  EXPECT_EQ(obs::latency_bucket_index(~0ull), obs::kNumLatencyBuckets - 1);
  EXPECT_EQ(obs::latency_bucket_upper(obs::kNumLatencyBuckets - 1), ~0ull);
}

TEST(LatencyHistogram, RelativeBucketWidthIsBounded) {
  // Log-bucketing promise: width / lower <= 1/8 = 12.5% past the exact
  // range.
  for (int i = 1 << (obs::kLatencySubBits + 1);
       i < obs::kNumLatencyBuckets - 1; ++i) {
    const double lower =
        static_cast<double>(obs::latency_bucket_lower(i));
    const double width =
        static_cast<double>(obs::latency_bucket_upper(i) -
                            obs::latency_bucket_lower(i) + 1);
    EXPECT_LE(width / lower, 0.125 + 1e-12) << i;
  }
}

// ---------------------------------------------------------------------
// Recording and quantiles.

TEST(LatencyHistogram, KnownAnswerQuantiles) {
  obs::TraceSession session;
  SessionGuard guard(session);
  // 1..10 ns are all in exact buckets, so the quantiles are exact:
  // rank = ceil(q * 10).
  for (std::uint64_t v = 1; v <= 10; ++v) {
    obs::record_latency("test.exact_ns", v);
  }
  const std::vector<obs::HistogramSnapshot> hists = session.histograms();
  ASSERT_EQ(hists.size(), 1u);
  const obs::HistogramSnapshot& h = hists[0];
  EXPECT_EQ(h.name, "test.exact_ns");
  EXPECT_EQ(h.count, 10u);
  EXPECT_EQ(h.total_ns, 55u);
  EXPECT_EQ(h.max_ns, 10u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 5.5);
  EXPECT_EQ(h.quantile_ns(0.0), 1u);
  EXPECT_EQ(h.quantile_ns(0.50), 5u);
  EXPECT_EQ(h.quantile_ns(0.90), 9u);
  EXPECT_EQ(h.quantile_ns(0.99), 10u);
  EXPECT_EQ(h.quantile_ns(1.0), 10u);
}

TEST(LatencyHistogram, QuantileClampsToObservedMax) {
  obs::TraceSession session;
  SessionGuard guard(session);
  // One sample deep in a wide bucket: the bucket upper bound exceeds the
  // observed max, so every quantile must clamp to max_ns. Also exercises
  // the very top bucket (the kNumLatencyBuckets fencepost).
  obs::record_latency("test.huge_ns", ~0ull - 5);
  const std::vector<obs::HistogramSnapshot> hists = session.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].max_ns, ~0ull - 5);
  EXPECT_EQ(hists[0].quantile_ns(0.5), ~0ull - 5);
  EXPECT_EQ(hists[0].quantile_ns(0.99), ~0ull - 5);
}

TEST(LatencyHistogram, EmptyHistogramExportsZero) {
  obs::TraceSession session;
  EXPECT_TRUE(session.histograms().empty());
  // Export with no recorded latencies still emits a valid document with
  // an empty histograms section.
  const std::string json = obs::metrics_json(session);
  EXPECT_TRUE(obs::validate_json(json));
  obs::HistogramSnapshot empty;
  empty.buckets.assign(obs::kNumLatencyBuckets, 0);
  EXPECT_EQ(empty.quantile_ns(0.5), 0u);
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);
}

TEST(LatencyHistogram, MergesPerThreadShardsUnderOpenMP) {
  obs::TraceSession session;
  SessionGuard guard(session);
  constexpr int kIters = 20000;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < kIters; ++i) {
    obs::record_latency("test.parallel_ns",
                        static_cast<std::uint64_t>(i % 7) + 1);
  }
  const std::vector<obs::HistogramSnapshot> hists = session.histograms();
  ASSERT_EQ(hists.size(), 1u);
  const obs::HistogramSnapshot& h = hists[0];
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kIters));
  std::uint64_t expected_total = 0;
  for (int i = 0; i < kIters; ++i) {
    expected_total += static_cast<std::uint64_t>(i % 7) + 1;
  }
  EXPECT_EQ(h.total_ns, expected_total);
  EXPECT_EQ(h.max_ns, 7u);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : h.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h.count);
}

TEST(LatencyHistogram, RecordingWithoutSessionIsANoOp) {
  ASSERT_FALSE(obs::enabled());
  obs::record_latency("test.nobody_ns", 42);
  { obs::ScopedLatency scoped("test.nobody_scoped_ns"); }
  obs::TraceSession session;
  EXPECT_TRUE(session.histograms().empty());
}

TEST(LatencyHistogram, ScopedLatencyRecordsIntoConstructionSession) {
  obs::TraceSession session;
  obs::set_global_session(&session);
  {
    obs::ScopedLatency scoped("test.straddler_ns");
    obs::set_global_session(nullptr);
  }
  const std::vector<obs::HistogramSnapshot> hists = session.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, 1u);
}

TEST(LatencyHistogram, SessionsDoNotShareHistograms) {
  // The thread-local shard cache is keyed on the session id: a second
  // session reusing the same name literal must start from zero.
  {
    obs::TraceSession first;
    SessionGuard guard(first);
    obs::record_latency("test.reuse_ns", 3);
    ASSERT_EQ(first.histograms().size(), 1u);
  }
  obs::TraceSession second;
  SessionGuard guard(second);
  obs::record_latency("test.reuse_ns", 5);
  const std::vector<obs::HistogramSnapshot> hists = second.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, 1u);
  EXPECT_EQ(hists[0].max_ns, 5u);
}

// ---------------------------------------------------------------------
// Time-series sampler.

TEST(TimeSeriesSampler, StartStopBracketsTheRun) {
  obs::TraceSession session;
  SessionGuard guard(session);
  obs::count("test.ticks", 1);
  obs::TimeSeriesSampler sampler(session, /*period_ms=*/1);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  obs::count("test.ticks", 1);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent

  // At least the immediate first sample and the final stop() sample.
  EXPECT_GE(sampler.total_samples(), 2u);
  const std::vector<obs::TimeSample> samples = sampler.samples();
  EXPECT_EQ(samples.size(), sampler.total_samples());
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_ns, samples[i].t_ns);
  }
  // The final sample sees the counter registry as it stands at stop().
  bool found = false;
  for (const obs::CounterValue& c : samples.back().counters) {
    if (c.name == "test.ticks") {
      EXPECT_EQ(c.value, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TimeSeriesSampler, RingKeepsTheNewestWindow) {
  obs::TraceSession session;
  obs::TimeSeriesSampler sampler(session, /*period_ms=*/1,
                                 /*capacity=*/4);
  sampler.start();
  // Wait until the ring has provably wrapped.
  for (int i = 0; i < 500 && sampler.total_samples() <= 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  ASSERT_GT(sampler.total_samples(), 6u);
  const std::vector<obs::TimeSample> samples = sampler.samples();
  EXPECT_EQ(samples.size(), 4u);  // capacity, not total
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_ns, samples[i].t_ns);
  }
}

TEST(TimeSeriesSampler, ExportsValidatedTimeseriesSection) {
  obs::TraceSession session;
  SessionGuard guard(session);
  obs::count(obs::names::kOocoreDiskBytes, 1000);
  obs::TimeSeriesSampler sampler(session, /*period_ms=*/1);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();

  const std::string json = obs::metrics_json(session, &sampler);
  EXPECT_TRUE(obs::validate_json(json));
  const auto doc = obs::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* ts = doc->find("timeseries");
  ASSERT_NE(ts, nullptr);
  const obs::JsonValue* period = ts->find("period_ms");
  ASSERT_NE(period, nullptr);
  EXPECT_EQ(period->integer, 1);
  const obs::JsonValue* samples = ts->find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_GE(samples->array.size(), 2u);
  const obs::JsonValue* counters = samples->array[0].find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* disk = counters->find(obs::names::kOocoreDiskBytes);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->integer, 1000);
}

TEST(MetricsJson, NegativesRejectCorruptedNewSections) {
  obs::TraceSession session;
  {
    SessionGuard guard(session);
    obs::record_latency(obs::names::kOocoreReadSegmentNs, 1500);
  }
  obs::TimeSeriesSampler sampler(session, 1);
  sampler.start();
  sampler.stop();
  const std::string good = obs::metrics_json(session, &sampler);
  ASSERT_TRUE(obs::validate_json(good));
  ASSERT_NE(good.find("\"histograms\""), std::string::npos);
  ASSERT_NE(good.find("\"timeseries\""), std::string::npos);

  // Truncation mid-document.
  EXPECT_FALSE(obs::validate_json(good.substr(0, good.size() / 2)));
  // A histogram quantile key stripped of its quotes.
  std::string bad = good;
  const std::size_t at = bad.find("\"p50_ns\"");
  ASSERT_NE(at, std::string::npos);
  bad.erase(at, 1);
  EXPECT_FALSE(obs::validate_json(bad));
  // Trailing garbage after the timeseries section.
  EXPECT_FALSE(obs::validate_json(good + "}"));
  std::string error;
  EXPECT_FALSE(obs::validate_json(good + "}", &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------
// Progress / ETA.

TEST(Progress, InactiveBetweenRuns) {
  const obs::ProgressSnapshot snap = obs::progress_snapshot();
  EXPECT_FALSE(snap.active);
  EXPECT_EQ(snap.stages_done, 0);
  EXPECT_EQ(snap.num_stages, 0);
}

TEST(Progress, TracksStageBoundariesAndSinks) {
  std::vector<obs::ProgressSnapshot> seen;
  obs::set_progress_sink(
      [&seen](const obs::ProgressSnapshot& p) { seen.push_back(p); });
  {
    obs::ProgressRun run(3);
    EXPECT_TRUE(run.active());
    EXPECT_TRUE(obs::progress_snapshot().active);
    run.stage_completed(1);
    run.stage_completed(2);
    run.stage_completed(3);
  }
  obs::set_progress_sink(nullptr);
  EXPECT_FALSE(obs::progress_snapshot().active);
  ASSERT_EQ(seen.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(i)].active);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].stages_done, i + 1);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].num_stages, 3);
    EXPECT_GE(seen[static_cast<std::size_t>(i)].eta_s, 0.0);
  }
  // ETA shrinks to zero at the final stage boundary.
  EXPECT_DOUBLE_EQ(seen.back().eta_s, 0.0);
}

TEST(Progress, NestedRunsAreInert) {
  std::vector<obs::ProgressSnapshot> seen;
  obs::set_progress_sink(
      [&seen](const obs::ProgressSnapshot& p) { seen.push_back(p); });
  {
    obs::ProgressRun outer(5);
    {
      obs::ProgressRun inner(99);
      EXPECT_FALSE(inner.active());
      inner.stage_completed(42);  // must not disturb the outer run
    }
    EXPECT_EQ(obs::progress_snapshot().num_stages, 5);
    outer.stage_completed(1);
  }
  obs::set_progress_sink(nullptr);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].stages_done, 1);
  EXPECT_EQ(seen[0].num_stages, 5);
}

TEST(Progress, CheckpointRestartCountsOnlyLocalStages) {
  // Resuming at stage 8 of 10: after one more stage the ETA must come
  // from the one locally-timed stage, not pretend 9 stages were free.
  obs::ProgressRun run(10, /*first_stage=*/8);
  obs::ProgressSnapshot before = obs::progress_snapshot();
  EXPECT_EQ(before.stages_done, 8);
  EXPECT_LT(before.eta_s, 0.0);  // nothing timed here yet
  run.stage_completed(9);
  const obs::ProgressSnapshot after = obs::progress_snapshot();
  EXPECT_EQ(after.stages_done, 9);
  EXPECT_GE(after.eta_s, 0.0);
}

TEST(Progress, PredictionWeightedEta) {
  // With predictions installed, the ETA scales the remaining predicted
  // seconds by measured/predicted-so-far. Predictions say the last
  // stage costs 99x the first; a linear ETA would be ~1x elapsed.
  obs::set_progress_predictions({1.0, 99.0});
  std::vector<obs::ProgressSnapshot> seen;
  obs::set_progress_sink(
      [&seen](const obs::ProgressSnapshot& p) { seen.push_back(p); });
  {
    obs::ProgressRun run(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    run.stage_completed(1);
  }
  obs::set_progress_sink(nullptr);
  obs::set_progress_predictions({});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_GT(seen[0].elapsed_s, 0.0);
  EXPECT_NEAR(seen[0].eta_s, 99.0 * seen[0].elapsed_s,
              5.0 * seen[0].elapsed_s);
}

TEST(Progress, FormatLineShowsAllFields) {
  obs::ProgressSnapshot p;
  p.active = true;
  p.stages_done = 3;
  p.num_stages = 12;
  p.elapsed_s = 12.4;
  p.eta_s = 41.2;
  p.gb_written = 1.25;
  p.ratio = 3.9;
  EXPECT_EQ(obs::format_progress_line(p),
            "[quasar] stage 3/12  elapsed 12.4s  eta 41.2s  "
            "written 1.25 GB  ratio 3.9x");
  p.eta_s = -1.0;
  p.gb_written = 0.0;
  p.ratio = 0.0;
  EXPECT_EQ(obs::format_progress_line(p),
            "[quasar] stage 3/12  elapsed 12.4s  eta --");
}

TEST(Progress, JoinsByteCountersFromTheSession) {
  obs::TraceSession session;
  SessionGuard guard(session);
  obs::count(obs::names::kOocoreRawBytes, 4'000'000'000ull);
  obs::count(obs::names::kOocoreDiskBytes, 1'000'000'000ull);
  obs::count(obs::names::kCkptBytesWritten, 500'000'000ull);
  obs::ProgressRun run(2);
  run.stage_completed(1);
  const obs::ProgressSnapshot snap = obs::progress_snapshot();
  EXPECT_NEAR(snap.gb_written, 1.5, 1e-9);
  EXPECT_NEAR(snap.ratio, 4.0, 1e-9);
}

TEST(Progress, ConcurrentScopedRunsStayIsolated) {
  // Two tenants (job-server workers) run under their own ProgressScope
  // on separate threads: each scope must only ever see its own run's
  // boundaries, never the neighbour's.
  auto tenant = [](int num_stages, std::vector<int>& seen) {
    obs::ProgressScope scope([&seen](const obs::ProgressSnapshot& p) {
      seen.push_back(p.num_stages);
    });
    obs::ProgressRun run(num_stages);
    for (int s = 1; s <= num_stages; ++s) {
      run.stage_completed(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(scope.latest().num_stages, num_stages);
    EXPECT_EQ(scope.latest().stages_done, num_stages);
  };
  std::vector<int> a_seen;
  std::vector<int> b_seen;
  std::thread a([&] { tenant(3, a_seen); });
  std::thread b([&] { tenant(7, b_seen); });
  a.join();
  b.join();
  ASSERT_EQ(a_seen.size(), 3u);
  ASSERT_EQ(b_seen.size(), 7u);
  for (const int n : a_seen) EXPECT_EQ(n, 3);
  for (const int n : b_seen) EXPECT_EQ(n, 7);
}

TEST(Progress, ScopeShadowsGlobalSink) {
  // A run under a ProgressScope must not leak boundaries to the global
  // sink the embedding process installed.
  int global_hits = 0;
  obs::set_progress_sink(
      [&global_hits](const obs::ProgressSnapshot&) { ++global_hits; });
  {
    obs::ProgressScope scope;
    obs::ProgressRun run(2);
    run.stage_completed(1);
    run.stage_completed(2);
    EXPECT_EQ(scope.latest().stages_done, 2);
  }
  obs::set_progress_sink(nullptr);
  EXPECT_EQ(global_hits, 0);
}

TEST(ThreadSession, CountersRouteToTheThreadSession) {
  // The job server binds each worker (and its OpenMP team) to a per-job
  // session; counters bumped on a bound thread must land there, not in
  // the global session.
  obs::TraceSession global;
  SessionGuard guard(global);
  obs::TraceSession job;
  std::thread worker([&job] {
    obs::ThreadSessionScope bind(&job);
#pragma omp parallel
    { obs::set_thread_session(&job); }
#pragma omp parallel for schedule(static)
    for (int i = 0; i < 100; ++i) {
      obs::count("test.routed", 1);
    }
#pragma omp parallel
    { obs::clear_thread_session(); }
  });
  worker.join();
  obs::count("test.global_only", 1);

  bool routed_in_job = false;
  for (const obs::CounterValue& c : job.counters()) {
    if (c.name == "test.routed") {
      EXPECT_EQ(c.value, 100u);
      routed_in_job = true;
    }
    EXPECT_NE(c.name, "test.global_only");
  }
  EXPECT_TRUE(routed_in_job);
  for (const obs::CounterValue& c : global.counters()) {
    EXPECT_NE(c.name, "test.routed");
  }
}

// ---------------------------------------------------------------------
// JSON parser.

TEST(JsonParser, ParsesScalarsAndStructure) {
  const auto doc = obs::parse_json(
      " {\"a\": 1, \"b\": -2.5e1, \"c\": \"x\\ny\", \"d\": [true, null], "
      "\"a\": 7} ");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const obs::JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->number_is_integer);
  EXPECT_EQ(a->integer, 7);  // duplicate key: last wins
  const obs::JsonValue* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->number_is_integer);
  EXPECT_DOUBLE_EQ(b->number, -25.0);
  const obs::JsonValue* c = doc->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string, "x\ny");
  const obs::JsonValue* d = doc->find("d");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->array.size(), 2u);
  EXPECT_TRUE(d->array[0].boolean);
  EXPECT_EQ(d->array[1].kind, obs::JsonValue::Kind::kNull);
}

TEST(JsonParser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_json("{", &error).has_value());
  EXPECT_NE(error.find("at byte"), std::string::npos);
  EXPECT_FALSE(obs::parse_json("{\"a\": 1,}").has_value());
  EXPECT_FALSE(obs::parse_json("[1 2]").has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(obs::parse_json("\"unterminated").has_value());
  EXPECT_FALSE(obs::parse_json("{} trailing").has_value());
  EXPECT_FALSE(obs::parse_json("nan").has_value());
}

// ---------------------------------------------------------------------
// Bench baseline comparator (the CI perf gate).

obs::JsonValue parse_or_die(const std::string& text) {
  std::string error;
  auto doc = obs::parse_json(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return *doc;
}

const std::string kBaseline = R"({
  "qubits": 16,
  "threads": 8,
  "level": {
    "gates": 78,
    "sweep_seconds": 0.100,
    "sweep_mean_seconds": 0.110,
    "sweep_stddev_seconds": 0.004,
    "effective_gbs": 2.0,
    "speedup": 1.8
  }
})";

TEST(BenchCheck, IdenticalResultPasses) {
  const obs::JsonValue base = parse_or_die(kBaseline);
  const obs::CompareReport report = obs::compare_bench_json(base, base);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.failures, 0);
  // qubits, gates, sweep_seconds, effective_gbs, speedup are checked;
  // threads is exempt, mean/stddev informational.
  int checked = 0;
  for (const obs::MetricDiff& d : report.diffs) checked += d.checked;
  EXPECT_EQ(checked, 5);
}

TEST(BenchCheck, FailsOnTimeRegressionBeyondTolerance) {
  const obs::JsonValue base = parse_or_die(kBaseline);
  obs::JsonValue result = parse_or_die(kBaseline);
  // 2x the 100 ms sweep: beyond the default 75% tolerance and the 5 ms
  // absolute floor.
  result.object[2].second.object[1].second.number = 0.200;
  const obs::CompareReport report = obs::compare_bench_json(base, result);
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.failures, 1);
  const std::string rendered = obs::format_compare_report(report, false);
  EXPECT_NE(rendered.find("level.sweep_seconds"), std::string::npos);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
}

TEST(BenchCheck, AbsoluteFloorForgivesTinyTimes) {
  // A 3x blowup on a 1 ms timing is scheduler noise, not a regression.
  const obs::JsonValue base =
      parse_or_die(R"({"tiny_seconds": 0.001})");
  const obs::JsonValue result =
      parse_or_die(R"({"tiny_seconds": 0.003})");
  EXPECT_TRUE(obs::compare_bench_json(base, result).passed());
  // ...unless the caller tightens the floor.
  obs::CompareOptions tight;
  tight.abs_floor_seconds = 0.0005;
  EXPECT_FALSE(obs::compare_bench_json(base, result, tight).passed());
}

TEST(BenchCheck, FailsOnThroughputDrop) {
  const obs::JsonValue base = parse_or_die(kBaseline);
  obs::JsonValue result = parse_or_die(kBaseline);
  result.object[2].second.object[4].second.number = 0.5;  // effective_gbs
  const obs::CompareReport report = obs::compare_bench_json(base, result);
  EXPECT_FALSE(report.passed());
}

TEST(BenchCheck, StructuralIntegerMismatchFails) {
  const obs::JsonValue base = parse_or_die(kBaseline);
  obs::JsonValue result = parse_or_die(kBaseline);
  result.object[2].second.object[0].second.integer = 77;  // gates
  EXPECT_FALSE(obs::compare_bench_json(base, result).passed());
  // threads is machine-dependent and exempt from the exact match.
  obs::JsonValue threads = parse_or_die(kBaseline);
  threads.object[1].second.integer = 64;
  EXPECT_TRUE(obs::compare_bench_json(base, threads).passed());
}

TEST(BenchCheck, MissingMetricFailsExtraIsInformational) {
  const obs::JsonValue base = parse_or_die(kBaseline);
  obs::JsonValue dropped = parse_or_die(kBaseline);
  dropped.object[2].second.object.erase(
      dropped.object[2].second.object.begin() + 1);  // sweep_seconds
  EXPECT_FALSE(obs::compare_bench_json(base, dropped).passed());

  obs::JsonValue extra = parse_or_die(kBaseline);
  extra.object.emplace_back("new_metric_seconds", obs::JsonValue{});
  extra.object.back().second.kind = obs::JsonValue::Kind::kNumber;
  extra.object.back().second.number = 1.0;
  EXPECT_TRUE(obs::compare_bench_json(base, extra).passed());
}

TEST(BenchCheck, InjectedSlowdownTripsTheGate) {
  // The CI self-check: a synthetic uniform 2x slowdown of the result
  // must fail against its own baseline.
  const obs::JsonValue base = parse_or_die(kBaseline);
  obs::JsonValue result = parse_or_die(kBaseline);
  obs::inject_slowdown(result, 2.0);
  const obs::CompareReport report = obs::compare_bench_json(base, result);
  EXPECT_FALSE(report.passed());
  // Times doubled, throughputs halved — both rules must trip.
  bool time_failed = false, throughput_failed = false;
  for (const obs::MetricDiff& d : report.diffs) {
    if (!d.failed) continue;
    if (d.path == "level.sweep_seconds") time_failed = true;
    if (d.path == "level.effective_gbs") throughput_failed = true;
  }
  EXPECT_TRUE(time_failed);
  EXPECT_TRUE(throughput_failed);
}

}  // namespace
}  // namespace quasar
