#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "core/rng.hpp"
#include "simulator/noise.hpp"
#include "simulator/observable.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

TEST(PauliString, Parsing) {
  const PauliString p("XIZY");
  ASSERT_EQ(p.weight(), 3u);
  EXPECT_EQ(p.factors()[0], (std::pair<Qubit, Pauli>{0, Pauli::kX}));
  EXPECT_EQ(p.factors()[1], (std::pair<Qubit, Pauli>{2, Pauli::kZ}));
  EXPECT_EQ(p.factors()[2], (std::pair<Qubit, Pauli>{3, Pauli::kY}));
  EXPECT_EQ(p.max_qubit(), 3);
  EXPECT_THROW(PauliString("XQ"), Error);
  PauliString q;
  q.add(1, Pauli::kX);
  EXPECT_THROW(q.add(1, Pauli::kZ), Error);
  EXPECT_EQ(PauliString("III").weight(), 0u);
}

TEST(Expectation, BasisStates) {
  StateVector s(3);
  s.set_basis_state(0b000);
  EXPECT_NEAR(expectation(s, PauliString("ZII")), 1.0, 1e-14);
  s.set_basis_state(0b001);
  EXPECT_NEAR(expectation(s, PauliString("ZII")), -1.0, 1e-14);
  EXPECT_NEAR(expectation(s, PauliString("XII")), 0.0, 1e-14);
  EXPECT_NEAR(expectation(s, PauliString("IZI")), 1.0, 1e-14);
}

TEST(Expectation, PlusState) {
  StateVector s(2);
  Simulator sim(s);
  Circuit c(2);
  c.h(0);
  sim.run(c);
  EXPECT_NEAR(expectation(s, PauliString("X")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString("Z")), 0.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString("Y")), 0.0, 1e-12);
}

TEST(Expectation, YEigenstate) {
  // S H |0> = (|0> + i|1>)/sqrt(2), the +1 eigenstate of Y.
  StateVector s(1);
  Simulator sim(s);
  Circuit c(1);
  c.h(0);
  c.s(0);
  sim.run(c);
  EXPECT_NEAR(expectation(s, PauliString("Y")), 1.0, 1e-12);
}

TEST(Expectation, GhzCorrelations) {
  const int n = 4;
  StateVector s(n);
  Simulator sim(s);
  Circuit c(n);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cnot(q, q + 1);
  sim.run(c);
  // <XXXX> = 1, <ZZII> = 1, <ZIII> = 0 for the GHZ state.
  EXPECT_NEAR(expectation(s, PauliString("XXXX")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString("ZZII")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString("ZIII")), 0.0, 1e-12);
  // <YYXX> = -1 (two Y factors flip the sign).
  EXPECT_NEAR(expectation(s, PauliString("YYXX")), -1.0, 1e-12);
}

TEST(Expectation, MatchesBruteForceOnRandomStates) {
  Rng rng(9);
  const int n = 6;
  StateVector s(n);
  // Random normalized state.
  Real norm = 0.0;
  for (Index i = 0; i < s.size(); ++i) {
    s[i] = Amplitude{rng.normal(), rng.normal()};
    norm += std::norm(s[i]);
  }
  for (Index i = 0; i < s.size(); ++i) s[i] /= std::sqrt(norm);

  for (const char* text : {"XIIIII", "IYIIII", "ZZIIII", "XYZIII",
                           "YYYYII", "ZIXIYI"}) {
    const PauliString p(text);
    // Brute force: build the operator as a gate and apply to a copy.
    StateVector applied = s;
    for (const auto& [qubit, op] : p.factors()) {
      const GateMatrix m = op == Pauli::kX   ? gates::x()
                           : op == Pauli::kY ? gates::y()
                                             : gates::z();
      reference_apply(applied, m, {qubit});
    }
    Amplitude overlap{0.0, 0.0};
    for (Index i = 0; i < s.size(); ++i) {
      overlap += std::conj(s[i]) * applied[i];
    }
    EXPECT_NEAR(expectation(s, p), overlap.real(), 1e-11) << text;
  }
}

TEST(Expectation, Validation) {
  StateVector s(2);
  EXPECT_THROW(expectation(s, PauliString("IIX")), Error);
}

TEST(Fidelity, SelfAndOrthogonal) {
  StateVector a(3), b(3);
  a.set_basis_state(1);
  b.set_basis_state(1);
  EXPECT_NEAR(fidelity(a, b), 1.0, 1e-14);
  b.set_basis_state(2);
  EXPECT_NEAR(fidelity(a, b), 0.0, 1e-14);
  StateVector c(4);
  EXPECT_THROW(fidelity(a, c), Error);
}

TEST(Fidelity, PhaseInvariant) {
  StateVector a(2), b(2);
  a.set_uniform_superposition();
  b.set_uniform_superposition();
  for (Index i = 0; i < b.size(); ++i) b[i] *= Amplitude{0.0, 1.0};
  EXPECT_NEAR(fidelity(a, b), 1.0, 1e-12);
}

TEST(Noise, ZeroNoiseIsExact) {
  Rng rng(4);
  Circuit c(4);
  c.h(0);
  c.cnot(0, 1);
  c.cnot(1, 2);
  c.t(3);
  StateVector noisy(4), ideal(4);
  Simulator sim(ideal);
  sim.run(c);
  const auto stats = run_noisy_trajectory(noisy, c, {}, rng);
  EXPECT_EQ(stats.pauli_events, 0);
  EXPECT_LT(noisy.max_abs_diff(ideal), 1e-13);
}

TEST(Noise, EventCountTracksRate) {
  Rng rng(5);
  Circuit c(5);
  for (int rep = 0; rep < 40; ++rep) {
    for (Qubit q = 0; q < 5; ++q) c.h(q);
  }
  // 200 single-qubit gates at p = 0.2: expect ~40 events.
  NoiseModel noise;
  noise.depolarizing_per_gate = 0.2;
  StateVector s(5);
  const auto stats = run_noisy_trajectory(s, c, noise, rng);
  EXPECT_GT(stats.pauli_events, 15);
  EXPECT_LT(stats.pauli_events, 75);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-10);  // Paulis keep purity
}

TEST(Noise, FidelityDecaysWithRate) {
  Rng rng(6);
  Circuit c(4);
  for (int rep = 0; rep < 6; ++rep) {
    for (Qubit q = 0; q < 4; ++q) c.h(q);
    c.cz(0, 1);
    c.cz(2, 3);
  }
  NoiseModel low, high;
  low.depolarizing_per_gate = 0.002;
  high.depolarizing_per_gate = 0.05;
  const Real f_low = average_noisy_fidelity(c, low, 20, rng);
  const Real f_high = average_noisy_fidelity(c, high, 20, rng);
  EXPECT_GT(f_low, 0.85);
  EXPECT_LT(f_high, f_low);
}

TEST(Noise, Validation) {
  Rng rng(7);
  Circuit c(2);
  c.h(0);
  StateVector s(2);
  NoiseModel bad;
  bad.depolarizing_per_gate = 1.5;
  EXPECT_THROW(run_noisy_trajectory(s, c, bad, rng), Error);
  StateVector wrong(3);
  EXPECT_THROW(run_noisy_trajectory(wrong, c, {}, rng), Error);
}

}  // namespace
}  // namespace quasar
