#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "kernels/swap.hpp"
#include "simulator/reference.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

void randomize(StateVector& state, Rng& rng) {
  for (Index i = 0; i < state.size(); ++i) {
    state[i] = Amplitude{rng.normal(), rng.normal()};
  }
}

TEST(BitSwap, MatchesSwapGate) {
  Rng rng(1);
  for (auto [p, q] : {std::pair{0, 1}, {0, 5}, {2, 6}, {6, 2}, {3, 4}}) {
    StateVector a(7), b(7);
    randomize(a, rng);
    for (Index i = 0; i < a.size(); ++i) b[i] = a[i];
    apply_bit_swap(a.data(), 7, p, q);
    reference_apply(b, gates::swap(), {p, q});
    EXPECT_LT(a.max_abs_diff(b), 1e-15) << p << "," << q;
  }
}

TEST(BitSwap, SelfInverse) {
  Rng rng(2);
  StateVector a(8), original(8);
  randomize(a, rng);
  for (Index i = 0; i < a.size(); ++i) original[i] = a[i];
  apply_bit_swap(a.data(), 8, 1, 6);
  apply_bit_swap(a.data(), 8, 6, 1);
  EXPECT_LT(a.max_abs_diff(original), 1e-15);
}

TEST(BitSwap, Validation) {
  StateVector s(4);
  EXPECT_THROW(apply_bit_swap(s.data(), 4, 0, 0), Error);
  EXPECT_THROW(apply_bit_swap(s.data(), 4, 0, 4), Error);
  EXPECT_THROW(apply_bit_swap(s.data(), 4, -1, 2), Error);
}

TEST(BitPermutation, MatchesIndexRemap) {
  Rng rng(3);
  const int n = 6;
  // A few random permutations; verify against direct index arithmetic.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    for (int i = 0; i < n; ++i) {
      std::swap(perm[i], perm[i + rng.uniform_int(n - i)]);
    }
    StateVector s(n), expected(n);
    randomize(s, rng);
    for (Index j = 0; j < s.size(); ++j) {
      Index src = 0;
      for (int b = 0; b < n; ++b) {
        src |= static_cast<Index>((j >> b) & 1u) << perm[b];
      }
      expected[j] = s[src];
    }
    apply_bit_permutation(s.data(), n, perm);
    EXPECT_LT(s.max_abs_diff(expected), 1e-15) << "trial " << trial;
  }
}

TEST(BitPermutation, IdentityDoesNothing) {
  StateVector s(5);
  Rng rng(4);
  randomize(s, rng);
  StateVector original = s;
  const int swaps = apply_bit_permutation(s.data(), 5, {0, 1, 2, 3, 4});
  EXPECT_EQ(swaps, 0);
  EXPECT_LT(s.max_abs_diff(original), 1e-15);
}

TEST(BitPermutation, SwapCountBounded) {
  StateVector s(6);
  const int swaps = apply_bit_permutation(s.data(), 6, {5, 4, 3, 2, 1, 0});
  EXPECT_LE(swaps, 5);  // at most n-1 transpositions
  EXPECT_GE(swaps, 3);
}

TEST(BitPermutation, Validation) {
  StateVector s(3);
  EXPECT_THROW(apply_bit_permutation(s.data(), 3, {0, 1}), Error);
  EXPECT_THROW(apply_bit_permutation(s.data(), 3, {0, 0, 1}), Error);
  EXPECT_THROW(apply_bit_permutation(s.data(), 3, {0, 1, 3}), Error);
}

}  // namespace
}  // namespace quasar
