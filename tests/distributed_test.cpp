#include <gtest/gtest.h>

#include <tuple>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "runtime/distributed.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

Circuit random_circuit(int n, int gates, std::uint64_t seed,
                       bool with_cnot = true) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(with_cnot ? 6 : 5));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.t(a); break;
      case 2: c.sqrt_x(a); break;
      case 3: c.append_custom({a}, gates::random_su2(rng)); break;
      case 4: c.cz(a, b); break;
      case 5: c.cnot(a, b); break;
    }
  }
  return c;
}

using Param = std::tuple<int /*n*/, int /*l*/, int /*seed*/>;

class DistributedVsReference : public ::testing::TestWithParam<Param> {};

TEST_P(DistributedVsReference, GatheredStateMatches) {
  const auto [n, l, seed] = GetParam();
  if (n - l > l) {
    GTEST_SKIP() << "the global-to-local swap scheme requires g <= l";
  }
  const Circuit c = random_circuit(n, 10 * n, seed);

  StateVector expected(n);
  reference_run(expected, c);

  for (auto mode : {SpecializationMode::kWorstCase,
                    SpecializationMode::kFull}) {
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = std::min(3, l);
    o.specialization = mode;
    DistributedSimulator sim(n, l);
    sim.init_basis(0);
    sim.run(c, make_schedule(c, o));
    EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10)
        << "mode " << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedVsReference,
    ::testing::Combine(::testing::Values(6, 8, 10),
                       ::testing::Values(4, 5),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Distributed, SupremacyCircuitMatchesReference) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 4;
  const Circuit c = make_supremacy_circuit(so);

  StateVector expected(9);
  reference_run(expected, c);

  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  DistributedSimulator sim(9, 6);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
}

TEST(Distributed, UniformInitSkipsHadamardLayer) {
  // Start from the uniform state and run the circuit without its H layer
  // — matches the full run (Sec. 3.6 trick).
  SupremacyOptions with_h;
  with_h.rows = 3;
  with_h.cols = 3;
  with_h.depth = 12;
  with_h.seed = 9;
  SupremacyOptions without_h = with_h;
  without_h.initial_hadamards = false;

  StateVector expected(9);
  reference_run(expected, make_supremacy_circuit(with_h));

  const Circuit c = make_supremacy_circuit(without_h);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  DistributedSimulator sim(9, 5);
  sim.init_uniform();
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
}

TEST(Distributed, SwapCountMatchesSchedule) {
  const Circuit c = random_circuit(8, 60, 5);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  const Schedule s = make_schedule(c, o);
  DistributedSimulator sim(8, 5);
  sim.init_basis(0);
  sim.run(c, s);
  // One all-to-all per stage transition, no more (Sec. 3.6.1 step 1).
  EXPECT_EQ(sim.stats().alltoalls,
            static_cast<std::uint64_t>(s.num_swaps()));
}

TEST(Distributed, DeferredPhasesAreApplied) {
  // T gates on global qubits produce deferred per-rank phases; gather()
  // must fold them in.
  const int n = 6, l = 4;
  Circuit c(n);
  c.h(4);  // put weight on the global qubit first (dense -> needs swap or
           // executes in a later stage; the scheduler decides)
  c.t(4);
  c.t(5);
  c.cz(4, 5);

  StateVector expected(n);
  reference_run(expected, c);

  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 2;
  o.specialization = SpecializationMode::kFull;
  DistributedSimulator sim(n, l);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-12);
}

TEST(Distributed, EntropyMatchesGatheredEntropy) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 14;
  so.seed = 2;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  DistributedSimulator sim(9, 6);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_NEAR(sim.entropy(), entropy(sim.gather()), 1e-9);
  EXPECT_NEAR(sim.norm_squared(), 1.0, 1e-10);
}

TEST(Distributed, RunValidatesConfiguration) {
  const Circuit c = random_circuit(8, 10, 7);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  const Schedule s = make_schedule(c, o);
  DistributedSimulator wrong(8, 6);
  EXPECT_THROW(wrong.run(c, s), Error);

  o.build_matrices = false;
  const Schedule no_matrices = make_schedule(c, o);
  DistributedSimulator sim(8, 5);
  EXPECT_THROW(sim.run(c, no_matrices), Error);
}

TEST(Distributed, SequentialRunsCompose) {
  // Running two halves of a circuit in two run() calls equals one run.
  const Circuit full = random_circuit(7, 40, 8);
  Circuit first(7), second(7);
  for (std::size_t i = 0; i < full.num_gates(); ++i) {
    const GateOp& op = full.op(i);
    (i < 20 ? first : second)
        .append(op.kind, op.qubits, op.matrix, op.cycle);
  }
  ScheduleOptions o;
  o.num_local = 4;
  o.kmax = 3;

  DistributedSimulator split(7, 4);
  split.init_basis(0);
  split.run(first, make_schedule(first, o));
  split.run(second, make_schedule(second, o));

  StateVector expected(7);
  reference_run(expected, full);
  EXPECT_LT(split.gather().max_abs_diff(expected), 1e-10);
}

TEST(Distributed, SingleRankDegeneratesToLocalSimulation) {
  const Circuit c = random_circuit(6, 40, 9);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  DistributedSimulator sim(6, 6);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_EQ(sim.stats().alltoalls, 0u);
  StateVector expected(6);
  reference_run(expected, c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-11);
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

TEST(Distributed, GlobalPermutationGatesNeedNoCommunication) {
  // X, Y, CNOT, and SWAP on global qubits are rank renumberings
  // (Sec. 3.5): the schedule must not add any all-to-all for them.
  const int n = 7, l = 4;  // globals: 4, 5, 6
  Circuit c(n);
  for (Qubit q = 0; q < n; ++q) c.h(q);  // stage 0, all local initially?
  // The H gates on 4..6 are dense-global and force one swap; everything
  // after that tests the permutation specialization.
  c.x(4);
  c.y(5);
  c.cnot(5, 6);   // both global: conditional rank flip
  c.swap(4, 6);   // both global: rank bit exchange
  c.cz(4, 5);     // diagonal: conditional phase

  StateVector expected(n);
  reference_run(expected, c);

  for (auto mode : {SpecializationMode::kWorstCase,
                    SpecializationMode::kFull}) {
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = 3;
    o.specialization = mode;
    const Schedule s = make_schedule(c, o);
    DistributedSimulator sim(n, l);
    sim.init_basis(0);
    sim.run(c, s);
    EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-12)
        << "mode " << static_cast<int>(mode);
    // Only the dense H gates on global qubits should have cost swaps.
    EXPECT_LE(sim.stats().alltoalls, 1u);
    // The single-sweep transition parks each outgoing qubit on the local
    // slot its incoming partner lands on, so the exchange leaves the
    // global side already in place: no fix-up renumbering, no pairwise
    // swap chain.
    EXPECT_EQ(sim.stats().local_swap_sweeps, 0u);
  }
}

TEST(Distributed, PermutationSpecializationReducesSwaps) {
  // A circuit alternating local work and global X gates: without the
  // specialization every X would need qubit swaps; with it, none do.
  const int n = 6, l = 4;
  Circuit c(n);
  Rng rng(3);
  for (int round = 0; round < 4; ++round) {
    for (Qubit q = 0; q < l; ++q) {
      c.append_custom({q}, gates::random_su2(rng));
    }
    c.x(4 + (round % 2));
    c.cnot(4, 5);
  }
  ScheduleOptions with, without;
  with.num_local = without.num_local = l;
  with.kmax = without.kmax = 3;
  with.specialization = SpecializationMode::kFull;
  without.specialization = SpecializationMode::kNone;
  with.build_matrices = without.build_matrices = false;
  EXPECT_EQ(make_schedule(c, with).num_swaps(), 0);
  EXPECT_GT(make_schedule(c, without).num_swaps(), 0);
}

TEST(Distributed, GlobalPermutationWithDeferredPhasesAndSwaps) {
  // Y on a global qubit leaves per-rank phases; a later swap must
  // flush them before amplitudes migrate.
  const int n = 6, l = 4;
  Circuit c(n);
  for (Qubit q = 0; q < n; ++q) c.h(q);
  c.y(5);        // rank renumbering + phases +-i
  c.h(5);        // dense global: forces a swap AFTER the pending phases
  c.t(0);

  StateVector expected(n);
  reference_run(expected, c);

  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 3;
  o.specialization = SpecializationMode::kFull;
  DistributedSimulator sim(n, l);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-12);
}

}  // namespace
}  // namespace quasar

namespace quasar {
namespace {

TEST(Distributed, SingleSweepTransition) {
  // A full stage transition with local shuffles AND boundary crossings
  // must cost exactly one fused local-permutation sweep and one
  // all-to-all — no pairwise swap chain, no separate phase flush.
  const int n = 8, l = 5;
  const Circuit c = random_circuit(n, 30, 99);
  DistributedSimulator sim(n, l);
  sim.init_basis(0);
  ScheduleOptions o;
  o.num_local = l;
  sim.run(c, o);

  const StateVector before = sim.gather();
  const CommStats base = sim.stats();

  // Location permutation with a local shuffle (0 <-> 1) and two
  // local/global crossings (2 -> 5, 4 -> 6 out; 5 -> 2, 6 -> 4 in).
  std::vector<int> f{1, 0, 5, 3, 6, 2, 4, 7};
  std::vector<int> to(n);
  for (Qubit q = 0; q < n; ++q) to[q] = f[sim.mapping()[q]];
  sim.remap(to);
  EXPECT_EQ(sim.mapping(), to);

  // The remapped state is physically rearranged but semantically
  // unchanged.
  EXPECT_LT(sim.gather().max_abs_diff(before), 1e-14);
  // Exactly one fused sweep, one all-to-all, zero pairwise swaps.
  EXPECT_EQ(sim.stats().local_permutation_sweeps -
                base.local_permutation_sweeps,
            1u);
  EXPECT_EQ(sim.stats().alltoalls - base.alltoalls, 1u);
  EXPECT_EQ(sim.stats().local_swap_sweeps, base.local_swap_sweeps);
  EXPECT_EQ(sim.stats().local_swap_sweeps, 0u);
  // One sweep touches every amplitude of the distributed state once.
  EXPECT_EQ(sim.stats().local_permutation_bytes -
                base.local_permutation_bytes,
            index_pow2(n) * kBytesPerAmplitude);
}

TEST(Distributed, RemapValidation) {
  DistributedSimulator sim(6, 4);
  sim.init_basis(0);
  EXPECT_THROW(sim.remap({0, 1, 2}), Error);              // wrong size
  EXPECT_THROW(sim.remap({0, 1, 2, 3, 4, 4}), Error);     // not a bijection
  EXPECT_THROW(sim.remap({0, 1, 2, 3, 4, 6}), Error);     // out of range
}

TEST(Distributed, LocalOnlyRemapNeedsNoCommunication) {
  const int n = 7, l = 4;
  const Circuit c = random_circuit(n, 20, 7);
  DistributedSimulator sim(n, l);
  sim.init_basis(0);
  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 3;
  sim.run(c, o);

  const StateVector before = sim.gather();
  const CommStats base = sim.stats();
  // Rotate the local locations only: no qubit crosses the boundary.
  std::vector<int> f{1, 2, 3, 0, 4, 5, 6};
  std::vector<int> to(n);
  for (Qubit q = 0; q < n; ++q) to[q] = f[sim.mapping()[q]];
  sim.remap(to);

  EXPECT_LT(sim.gather().max_abs_diff(before), 1e-14);
  EXPECT_EQ(sim.stats().alltoalls, base.alltoalls);
  EXPECT_EQ(sim.stats().local_permutation_sweeps -
                base.local_permutation_sweeps,
            1u);
}

TEST(DistributedQueries, AmplitudeMatchesGather) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 15;
  so.seed = 6;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  DistributedSimulator sim(9, 5);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  const StateVector full = sim.gather();
  Rng rng(1);
  for (int trial = 0; trial < 64; ++trial) {
    const Index p = rng.uniform_int(full.size());
    EXPECT_NEAR(std::abs(sim.amplitude(p) - full[p]), 0.0, 1e-14);
    EXPECT_NEAR(sim.probability(p), full.probability(p), 1e-14);
  }
  EXPECT_THROW(sim.amplitude(full.size()), Error);
}

TEST(DistributedQueries, SampleMatchesDistribution) {
  // GHZ-like circuit: only |0..0> and |1..1> occur.
  Circuit c(8);
  c.h(0);
  for (int q = 0; q + 1 < 8; ++q) c.cnot(q, q + 1);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  DistributedSimulator sim(8, 5);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  Rng rng(2);
  const auto samples = sim.sample(2000, rng);
  ASSERT_EQ(samples.size(), 2000u);
  int ones = 0;
  for (Index s : samples) {
    ASSERT_TRUE(s == 0 || s == 255) << s;
    ones += s == 255;
  }
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.06);
}

TEST(DistributedQueries, SampleAgreesWithGatheredSampler) {
  // The two samplers walk the distribution in different index orders
  // (machine vs program), so identical thresholds give different —
  // equally valid — outcomes; compare them statistically via the mean
  // scaled probability of the sampled outcomes (the XEB statistic).
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 4;
  so.depth = 14;
  so.seed = 8;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  DistributedSimulator sim(8, 5);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));

  Rng rng_a(42), rng_b(43);
  const auto distributed = sim.sample(4000, rng_a);
  const StateVector full = sim.gather();
  const auto gathered = sample_outcomes(full, 4000, rng_b);
  auto xeb = [&](const std::vector<Index>& samples) {
    Real total = 0.0;
    for (Index s : samples) {
      total += static_cast<Real>(full.size()) * full.probability(s);
    }
    return total / static_cast<Real>(samples.size());
  };
  EXPECT_NEAR(xeb(distributed), xeb(gathered), 0.15);
  for (Index s : distributed) {
    EXPECT_GT(full.probability(s), 0.0);
  }
}

}  // namespace
}  // namespace quasar
