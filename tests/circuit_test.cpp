#include <gtest/gtest.h>

#include "circuit/analysis.hpp"
#include "circuit/circuit.hpp"
#include "circuit/io.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace quasar {
namespace {

TEST(Circuit, BuildersAppendExpectedOps) {
  Circuit c(3);
  c.h(0);
  c.cz(0, 1);
  c.t(2);
  c.cnot(1, 2);
  ASSERT_EQ(c.num_gates(), 4u);
  EXPECT_EQ(c.op(0).kind, GateKind::kH);
  EXPECT_EQ(c.op(1).qubits, (std::vector<Qubit>{0, 1}));
  EXPECT_EQ(c.op(3).kind, GateKind::kCNot);
}

TEST(Circuit, Validation) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.h(-1), Error);
  EXPECT_THROW(c.cz(1, 1), Error);
  EXPECT_THROW(Circuit(0), Error);
  EXPECT_THROW(Circuit(63), Error);
}

TEST(Circuit, CustomGateMustBeUnitary) {
  Circuit c(2);
  GateMatrix bad(2, {Amplitude{2.0}, Amplitude{0.0}, Amplitude{0.0},
                     Amplitude{1.0}});
  EXPECT_THROW(c.append_custom({0}, bad), Error);
  c.append_custom({0}, gates::h());  // fine
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(Circuit, DiagonalFlagsCached) {
  Circuit c(3);
  c.t(0);
  c.cnot(1, 2);
  c.h(0);
  EXPECT_TRUE(c.op(0).diagonal);
  EXPECT_FALSE(c.op(1).diagonal);
  EXPECT_TRUE(c.op(1).acts_diagonally_on(1));   // control
  EXPECT_FALSE(c.op(1).acts_diagonally_on(2));  // target
  EXPECT_TRUE(c.op(1).acts_diagonally_on(0));   // untouched qubit
  EXPECT_FALSE(c.op(2).acts_diagonally_on(0));
}

TEST(Circuit, SharedStandardMatrixIsShared) {
  Circuit c(2);
  c.t(0);
  c.t(1);
  EXPECT_EQ(c.op(0).matrix.get(), c.op(1).matrix.get());
}

TEST(Circuit, ExtendRequiresMatchingWidth) {
  Circuit a(3), b(3), c(4);
  a.h(0);
  b.x(1);
  a.extend(b);
  EXPECT_EQ(a.num_gates(), 2u);
  EXPECT_THROW(a.extend(c), Error);
}

TEST(Analysis, LayerizeRespectsQubitConflicts) {
  Circuit c(3);
  c.h(0);       // layer 0
  c.h(1);       // layer 0
  c.cz(0, 1);   // layer 1
  c.h(2);       // layer 0
  c.cz(1, 2);   // layer 2
  const auto layers = layerize(c);
  EXPECT_EQ(layers, (std::vector<int>{0, 0, 1, 0, 2}));
}

TEST(Analysis, StatsCountKinds) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.cz(0, 1);
  c.t(2);
  const CircuitStats stats = analyze(c);
  EXPECT_EQ(stats.num_gates, 4u);
  EXPECT_EQ(stats.num_single_qubit, 3u);
  EXPECT_EQ(stats.num_two_qubit, 1u);
  EXPECT_EQ(stats.num_diagonal, 2u);  // CZ and T
  EXPECT_EQ(stats.depth, 2);
  EXPECT_EQ(stats.by_name.at("H"), 2u);
}

TEST(Analysis, GatesByQubit) {
  Circuit c(3);
  c.h(0);
  c.cz(0, 2);
  c.x(1);
  const auto by_qubit = gates_by_qubit(c);
  EXPECT_EQ(by_qubit[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(by_qubit[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(by_qubit[2], (std::vector<std::size_t>{1}));
}

TEST(CircuitIo, RoundTripStandardGates) {
  Circuit c(4);
  c.h(0);
  c.cz(1, 3);
  c.sqrt_x(2);
  c.sqrt_y(0);
  c.cnot(0, 1);
  const Circuit parsed = circuit_from_string(circuit_to_string(c));
  ASSERT_EQ(parsed.num_gates(), c.num_gates());
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    EXPECT_EQ(parsed.op(i).kind, c.op(i).kind);
    EXPECT_EQ(parsed.op(i).qubits, c.op(i).qubits);
  }
}

TEST(CircuitIo, RoundTripCustomAndParameterized) {
  Circuit c(3);
  c.rz(0, 0.7071);
  Rng rng(3);
  c.append_custom({1, 2}, gates::cz() * (gates::random_su2(rng).embed(2, {0})));
  const Circuit parsed = circuit_from_string(circuit_to_string(c));
  ASSERT_EQ(parsed.num_gates(), 2u);
  EXPECT_LT(parsed.op(0).matrix->distance(*c.op(0).matrix), 1e-12);
  EXPECT_LT(parsed.op(1).matrix->distance(*c.op(1).matrix), 1e-12);
}

TEST(CircuitIo, CycleTagsPreserved) {
  Circuit c(2);
  c.append_standard(GateKind::kH, {0}, 0);
  c.append_standard(GateKind::kCZ, {0, 1}, 3);
  const Circuit parsed = circuit_from_string(circuit_to_string(c));
  EXPECT_EQ(parsed.op(0).cycle, 0);
  EXPECT_EQ(parsed.op(1).cycle, 3);
}

TEST(CircuitIo, CommentsAndBlanksIgnored) {
  const Circuit parsed = circuit_from_string(
      "qubits 2\n# a comment\n\nH 0  # trailing\nCZ 0 1\n");
  EXPECT_EQ(parsed.num_gates(), 2u);
}

TEST(CircuitIo, ParseErrors) {
  EXPECT_THROW(circuit_from_string("H 0\n"), Error);           // no header
  EXPECT_THROW(circuit_from_string("qubits 2\nBOGUS 0\n"), Error);
  EXPECT_THROW(circuit_from_string("qubits 2\nCZ 0\n"), Error);  // arity
  EXPECT_THROW(circuit_from_string("qubits 2\nH 5\n"), Error);   // range
}

}  // namespace
}  // namespace quasar

// -- strip_trailing_diagonals (paper Sec. 3.6) --------------------------

#include "circuit/supremacy.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

TEST(StripTrailingDiagonals, DropsOnlyFinalDiagonals) {
  Circuit c(3);
  c.t(0);        // kept: a dense gate on qubit 0 follows
  c.h(0);
  c.cz(0, 1);    // trailing diagonal -> dropped
  c.t(2);        // trailing diagonal -> dropped
  const Circuit stripped = strip_trailing_diagonals(c);
  ASSERT_EQ(stripped.num_gates(), 2u);
  EXPECT_EQ(stripped.op(0).kind, GateKind::kT);
  EXPECT_EQ(stripped.op(1).kind, GateKind::kH);
}

TEST(StripTrailingDiagonals, CascadesToFixpoint) {
  Circuit c(2);
  c.h(0);
  c.cz(0, 1);  // dropped (then the T below it becomes trailing too)
  c.t(1);      // dropped only if scanning reaches fixpoint... order:
  // program order is h, cz, t; backwards scan sees t (diag, drop), then
  // cz (diag, qubits unsealed, drop), then h (kept).
  const Circuit stripped = strip_trailing_diagonals(c);
  ASSERT_EQ(stripped.num_gates(), 1u);
  EXPECT_EQ(stripped.op(0).kind, GateKind::kH);
}

TEST(StripTrailingDiagonals, PreservesOutputProbabilities) {
  SupremacyOptions o;
  o.rows = 3;
  o.cols = 3;
  o.depth = 17;  // ends mid-pattern: trailing CZs exist
  o.seed = 5;
  const Circuit full = make_supremacy_circuit(o);
  const Circuit stripped = strip_trailing_diagonals(full);
  EXPECT_LT(stripped.num_gates(), full.num_gates());

  StateVector a(9), b(9);
  reference_run(a, full);
  reference_run(b, stripped);
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::norm(a[i]), std::norm(b[i]), 1e-12);
  }
  EXPECT_NEAR(entropy(a), entropy(b), 1e-10);
}

}  // namespace
}  // namespace quasar
