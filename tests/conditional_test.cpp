#include <gtest/gtest.h>

#include "core/error.hpp"
#include "gates/standard.hpp"
#include "runtime/conditional.hpp"

namespace quasar {
namespace {

TEST(Conditional, GlobalTGateBecomesPhase) {
  // T with its only qubit fixed: |0> branch is identity, |1> branch is
  // the e^{i pi/4} phase (Sec. 3.5).
  const auto zero = condition_gate(gates::t(), {true}, 0);
  EXPECT_TRUE(zero.is_identity);
  const auto one = condition_gate(gates::t(), {true}, 1);
  EXPECT_FALSE(one.is_identity);
  EXPECT_EQ(one.matrix.num_qubits(), 0);
  EXPECT_NEAR(one.phase.real(), std::sqrt(0.5), 1e-15);
  EXPECT_NEAR(one.phase.imag(), std::sqrt(0.5), 1e-15);
}

TEST(Conditional, CzWithOneGlobalQubitBecomesZOrIdentity) {
  // CZ, qubit 1 global: control value 0 -> identity, 1 -> local Z.
  const auto zero = condition_gate(gates::cz(), {false, true}, 0);
  EXPECT_TRUE(zero.is_identity);
  const auto one = condition_gate(gates::cz(), {false, true}, 1);
  EXPECT_FALSE(one.is_identity);
  EXPECT_LT(one.matrix.distance(gates::z()), 1e-15);
}

TEST(Conditional, CzWithBothQubitsGlobal) {
  // Both fixed: phase -1 only for |11>.
  for (Index bits = 0; bits < 4; ++bits) {
    const auto cond = condition_gate(gates::cz(), {true, true}, bits);
    EXPECT_EQ(cond.matrix.num_qubits(), 0);
    if (bits == 3) {
      EXPECT_NEAR(cond.phase.real(), -1.0, 1e-15);
    } else {
      EXPECT_TRUE(cond.is_identity);
    }
  }
}

TEST(Conditional, CnotWithGlobalControl) {
  // CNOT (control = gate qubit 0) with the control fixed: 0 -> identity,
  // 1 -> X on the target (the paper's rank-conditional bit flip).
  const auto zero = condition_gate(gates::cnot(), {true, false}, 0);
  EXPECT_TRUE(zero.is_identity);
  const auto one = condition_gate(gates::cnot(), {true, false}, 1);
  EXPECT_LT(one.matrix.distance(gates::x()), 1e-15);
}

TEST(Conditional, RejectsNonDiagonalFixedQubit) {
  // Fixing the dense target of a CNOT is not a valid specialization.
  EXPECT_THROW(condition_gate(gates::cnot(), {false, true}, 0), Error);
  EXPECT_THROW(condition_gate(gates::h(), {true}, 0), Error);
}

TEST(Conditional, NoFixedQubitsReturnsOriginal) {
  const auto cond = condition_gate(gates::cz(), {false, false}, 0);
  EXPECT_LT(cond.matrix.distance(gates::cz()), 1e-15);
  EXPECT_FALSE(cond.is_identity);
}

TEST(Conditional, ValidatesFlagCount) {
  EXPECT_THROW(condition_gate(gates::cz(), {true}, 0), Error);
}

TEST(Conditional, CPhaseConditioning) {
  const double theta = 0.37;
  const auto one = condition_gate(gates::cphase(theta), {true, false}, 1);
  EXPECT_LT(one.matrix.distance(gates::phase(theta)), 1e-15);
}

}  // namespace
}  // namespace quasar
