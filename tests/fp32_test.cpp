#include <gtest/gtest.h>

#include <tuple>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "fp32/simulator_f32.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

GateMatrix random_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 2; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cnot().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}

std::vector<int> random_locations(int k, int n, Rng& rng) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i) {
    std::swap(all[i], all[i + rng.uniform_int(n - i)]);
  }
  return std::vector<int>(all.begin(), all.begin() + k);
}

TEST(Fp32State, MemoryIsHalved) {
  EXPECT_EQ(sizeof(AmplitudeF), 8u);
  EXPECT_EQ(sizeof(Amplitude), 16u);
}

TEST(Fp32State, Basics) {
  StateVectorF s(5);
  EXPECT_EQ(s.size(), 32u);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-7);
  s.set_basis_state(7);
  EXPECT_EQ(s[7], (AmplitudeF{1.0f, 0.0f}));
  s.set_uniform_superposition();
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-6);
  EXPECT_NEAR(s.entropy(), 5 * std::log(2.0), 1e-5);
  EXPECT_THROW(s.set_basis_state(32), Error);
  EXPECT_THROW(StateVectorF(0), Error);
}

using SweepParam = std::tuple<int /*n*/, int /*k*/, int /*seed*/>;
class Fp32KernelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Fp32KernelSweep, MatchesDoublePrecisionReference) {
  const auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP();
  Rng rng(seed * 131 + n * 17 + k);
  const GateMatrix u = random_unitary(k, rng);
  const auto locations = random_locations(k, n, rng);

  // Identical random initial state in both precisions.
  StateVector expected(n);
  StateVectorF actual(n);
  Real norm = 0.0;
  for (Index i = 0; i < expected.size(); ++i) {
    expected[i] = Amplitude{rng.normal(), rng.normal()};
    norm += std::norm(expected[i]);
  }
  norm = std::sqrt(norm);
  for (Index i = 0; i < expected.size(); ++i) {
    expected[i] /= norm;
    actual[i] = AmplitudeF{static_cast<float>(expected[i].real()),
                           static_cast<float>(expected[i].imag())};
  }
  reference_apply(expected, u, locations);
  apply_gate_f32(actual.data(), n, prepare_gate_f32(u, locations));
  EXPECT_LT(actual.max_abs_diff(expected), 2e-6);
}

TEST_P(Fp32KernelSweep, SimdMatchesScalarFloat) {
  const auto [n, k, seed] = GetParam();
  if (k > n) GTEST_SKIP();
  Rng rng(seed * 7 + k);
  const GateMatrix u = random_unitary(k, rng);
  const auto locations = random_locations(k, n, rng);
  const PreparedGateF gate = prepare_gate_f32(u, locations);

  StateVectorF a(n), b(n);
  for (Index i = 0; i < a.size(); ++i) {
    a[i] = AmplitudeF{static_cast<float>(rng.normal()),
                      static_cast<float>(rng.normal())};
    b[i] = a[i];
  }
  apply_gate_f32(a.data(), n, gate);
  apply_gate_f32_scalar(b.data(), n, gate);
  // Same rounding behaviour up to FMA contraction differences.
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 2e-5f);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 2e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fp32KernelSweep,
    ::testing::Combine(::testing::Values(5, 8, 10),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Fp32Kernels, DiagonalPath) {
  StateVectorF s(6);
  s.set_uniform_superposition();
  const PreparedGateF cz = prepare_gate_f32(gates::cz(), {1, 4});
  EXPECT_TRUE(cz.diagonal);
  apply_gate_f32(s.data(), 6, cz);
  // Sign flipped exactly where both bits are set.
  for (Index i = 0; i < s.size(); ++i) {
    const bool flip = (i & 2) && (i & 16);
    EXPECT_EQ(s[i].real() < 0, flip) << i;
  }
}

TEST(Fp32Kernels, Validation) {
  StateVectorF s(4);
  EXPECT_THROW(
      apply_gate_f32(s.data(), 4, prepare_gate_f32(gates::h(), {7})),
      Error);
  EXPECT_THROW(prepare_gate_f32(gates::cz(), {1, 1}), Error);
  EXPECT_THROW(
      apply_diagonal_f32(s.data(), 4, prepare_gate_f32(gates::h(), {0})),
      Error);
}

TEST(Fp32Kernels, FusedPermutationMatchesSwapChain) {
  // The fused single-sweep permutation must move floats exactly like the
  // equivalent chain of pairwise bit swaps.
  const int n = 9;
  Rng rng(42);
  StateVectorF fused(n), chained(n);
  for (Index i = 0; i < fused.size(); ++i) {
    fused[i] = AmplitudeF{static_cast<float>(rng.normal()),
                          static_cast<float>(rng.normal())};
    chained[i] = fused[i];
  }

  // (1 6)(3 8) as one permutation, fused vs chained.
  std::vector<int> perm(n);
  for (int j = 0; j < n; ++j) perm[j] = j;
  std::swap(perm[1], perm[6]);
  std::swap(perm[3], perm[8]);

  apply_fused_bit_permutation_f32(fused.data(), n, perm);
  apply_bit_swap_f32(chained.data(), n, 1, 6);
  apply_bit_swap_f32(chained.data(), n, 3, 8);
  for (Index i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], chained[i]) << i;
  }

  // Tiny scratch chunks stay exact too.
  StateVectorF tiny(n);
  for (Index i = 0; i < tiny.size(); ++i) {
    Index src = 0;
    for (int b = 0; b < n; ++b) {
      src |= static_cast<Index>(get_bit(i, b)) << perm[b];
    }
    tiny[src] = chained[i];
  }
  apply_fused_bit_permutation_f32(tiny.data(), n, perm,
                                  AmplitudeF{1.0f, 0.0f}, 0,
                                  std::size_t{8});
  for (Index i = 0; i < tiny.size(); ++i) {
    EXPECT_EQ(tiny[i], chained[i]) << i;
  }
}

TEST(Fp32Simulator, GhzState) {
  const int n = 10;
  StateVectorF s(n);
  SimulatorF sim(s);
  Circuit c(n);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cnot(q, q + 1);
  sim.run(c);
  EXPECT_NEAR(std::abs(std::complex<double>(s[0])), std::sqrt(0.5), 1e-6);
  EXPECT_NEAR(std::abs(std::complex<double>(s[s.size() - 1])),
              std::sqrt(0.5), 1e-6);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-5);
}

TEST(Fp32Simulator, SupremacyEntropyTracksDouble) {
  // The Sec. 5 claim rests on float being accurate enough for supremacy
  // circuits: after a depth-20 12-qubit circuit the float state tracks
  // the double state to ~1e-5 per amplitude and entropy to ~1e-5.
  SupremacyOptions o;
  o.rows = 4;
  o.cols = 3;
  o.depth = 20;
  o.seed = 5;
  const Circuit c = make_supremacy_circuit(o);

  StateVector d(12);
  Simulator dsim(d);
  dsim.run(c);

  StateVectorF f(12);
  SimulatorF fsim(f);
  fsim.run(c);

  EXPECT_LT(f.max_abs_diff(d), 5e-5);
  EXPECT_NEAR(f.entropy(), entropy(d), 1e-4);
  EXPECT_NEAR(f.norm_squared(), 1.0, 1e-4);
}

TEST(Fp32Simulator, RunValidatesWidth) {
  StateVectorF s(3);
  SimulatorF sim(s);
  Circuit wrong(4);
  wrong.h(0);
  EXPECT_THROW(sim.run(wrong), Error);
}

}  // namespace
}  // namespace quasar

#include "fp32/distributed_f32.hpp"
#include "runtime/distributed.hpp"

namespace quasar {
namespace {

TEST(Fp32Distributed, MatchesDoubleDistributedRun) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 21;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  const Schedule s = make_schedule(c, o);

  StateVector expected(9);
  reference_run(expected, c);

  DistributedSimulatorF sim(9, 6);
  sim.init_basis(0);
  sim.run(c, s);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 5e-5);
  EXPECT_NEAR(sim.norm_squared(), 1.0, 1e-4);
  EXPECT_NEAR(sim.entropy(), entropy(expected), 1e-3);
  EXPECT_EQ(sim.stats().alltoalls,
            static_cast<std::uint64_t>(s.num_swaps()));
}

TEST(Fp32Distributed, HalfTheCommunicationBytes) {
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 4;
  so.depth = 18;
  so.seed = 22;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  const Schedule s = make_schedule(c, o);

  DistributedSimulatorF f(8, 5);
  f.init_basis(0);
  f.run(c, s);
  DistributedSimulator d(8, 5);
  d.init_basis(0);
  d.run(c, s);
  ASSERT_GT(d.stats().bytes_sent_per_rank, 0u);
  EXPECT_EQ(2 * f.stats().bytes_sent_per_rank,
            d.stats().bytes_sent_per_rank);
}

TEST(Fp32Distributed, GlobalSpecializationsWork) {
  Circuit c(7);
  for (Qubit q = 0; q < 7; ++q) c.h(q);
  c.x(5);        // rank renumbering
  c.cnot(5, 6);  // conditional rank flip
  c.t(6);        // deferred phase
  c.cz(4, 6);    // conditional phase
  c.h(0);

  StateVector expected(7);
  reference_run(expected, c);

  ScheduleOptions o;
  o.num_local = 4;
  o.kmax = 3;
  o.specialization = SpecializationMode::kFull;
  DistributedSimulatorF sim(7, 4);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 5e-5);
  // The single-sweep transition needs no fix-up renumbering (outgoing
  // qubits land directly on the slots their incoming partners vacate)
  // and no pairwise swap chain.
  EXPECT_EQ(sim.stats().local_swap_sweeps, 0u);
}

TEST(Fp32Distributed, Validation) {
  EXPECT_THROW(DistributedSimulatorF(8, 0), Error);
  EXPECT_THROW(DistributedSimulatorF(10, 4), Error);  // g > l
  const Circuit c = make_supremacy_circuit({3, 3, 10, 0, true});
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  const Schedule s = make_schedule(c, o);
  DistributedSimulatorF wrong(9, 6);
  EXPECT_THROW(wrong.run(c, s), Error);
}

}  // namespace
}  // namespace quasar
