#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "circuit/supremacy.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "kernels/block_apply.hpp"
#include "oocore/codec.hpp"
#include "oocore/pipeline.hpp"
#include "oocore/segment_store.hpp"
#include "runtime/distributed.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

using oocore::Codec;

std::vector<Amplitude> random_state(Index count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Amplitude> amps(count);
  Real norm = 0.0;
  for (auto& a : amps) {
    a = {rng.uniform_real() - 0.5, rng.uniform_real() - 0.5};
    norm += std::norm(a);
  }
  const Real scale = 1.0 / std::sqrt(norm);
  for (auto& a : amps) a *= scale;
  return amps;
}

// ---------------------------------------------------------------- codec

TEST(Codec, NamesRoundTrip) {
  for (Codec c : {Codec::kRaw, Codec::kLz, Codec::kFp32, Codec::kFp32Lz}) {
    EXPECT_EQ(oocore::codec_from_name(oocore::codec_name(c)), c);
  }
  EXPECT_THROW(oocore::codec_from_name("zstd"), Error);
  EXPECT_TRUE(oocore::codec_lossless(Codec::kRaw));
  EXPECT_TRUE(oocore::codec_lossless(Codec::kLz));
  EXPECT_FALSE(oocore::codec_lossless(Codec::kFp32));
  EXPECT_FALSE(oocore::codec_lossless(Codec::kFp32Lz));
}

TEST(Codec, LosslessRoundTripIsExact) {
  const auto amps = random_state(1 << 10, 7);
  const std::size_t raw = amps.size() * sizeof(Amplitude);
  std::vector<std::uint8_t> frame(oocore::encoded_bound(raw));
  std::vector<Amplitude> out(amps.size());
  oocore::CodecScratch scratch;
  for (Codec c : {Codec::kRaw, Codec::kLz}) {
    const std::size_t n =
        oocore::encode(c, amps.data(), raw, frame.data(), scratch);
    ASSERT_LE(n, frame.size());
    std::fill(out.begin(), out.end(), Amplitude{0, 0});
    const std::size_t decoded = oocore::decode(
        frame.data(), n, out.data(), out.size() * sizeof(Amplitude), scratch);
    EXPECT_EQ(decoded, raw);
    EXPECT_EQ(std::memcmp(out.data(), amps.data(), raw), 0)
        << oocore::codec_name(c);
  }
}

TEST(Codec, Fp32RoundTripMatchesFloatTruncation) {
  const auto amps = random_state(1 << 9, 9);
  const std::size_t raw = amps.size() * sizeof(Amplitude);
  std::vector<std::uint8_t> frame(oocore::encoded_bound(raw));
  std::vector<Amplitude> out(amps.size());
  oocore::CodecScratch scratch;
  for (Codec c : {Codec::kFp32, Codec::kFp32Lz}) {
    const std::size_t n =
        oocore::encode(c, amps.data(), raw, frame.data(), scratch);
    const std::size_t decoded = oocore::decode(
        frame.data(), n, out.data(), out.size() * sizeof(Amplitude), scratch);
    ASSERT_EQ(decoded, raw);
    for (std::size_t i = 0; i < amps.size(); ++i) {
      // The round trip is exactly double -> float -> double.
      EXPECT_EQ(out[i].real(),
                static_cast<double>(static_cast<float>(amps[i].real())));
      EXPECT_EQ(out[i].imag(),
                static_cast<double>(static_cast<float>(amps[i].imag())));
    }
  }
}

TEST(Codec, NormalizedStateCompresses) {
  // A normalized state's exponent bytes are nearly constant; the
  // byte-plane split + LZ must beat raw by a usable margin.
  const auto amps = random_state(1 << 12, 3);
  const std::size_t raw = amps.size() * sizeof(Amplitude);
  std::vector<std::uint8_t> frame(oocore::encoded_bound(raw));
  oocore::CodecScratch scratch;
  const std::size_t n =
      oocore::encode(Codec::kLz, amps.data(), raw, frame.data(), scratch);
  EXPECT_LT(n, raw);  // ratio > 1
  oocore::FrameInfo info;
  ASSERT_TRUE(oocore::peek_frame(frame.data(), n, &info));
  EXPECT_EQ(info.codec, Codec::kLz);
  EXPECT_EQ(info.raw_bytes, raw);
}

TEST(Codec, IncompressibleInputFallsBackWithoutExpansion) {
  // Pure noise bytes (not a normalized state): LZ cannot win, the frame
  // must fall back to a raw payload within encoded_bound, and the frame's
  // codec id — not the caller's request — is authoritative.
  Rng rng(11);
  std::vector<std::uint8_t> noise(8192);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  std::vector<std::uint8_t> frame(oocore::encoded_bound(noise.size()));
  std::vector<std::uint8_t> out(noise.size());
  oocore::CodecScratch scratch;
  const std::size_t n = oocore::encode(Codec::kLz, noise.data(), noise.size(),
                                       frame.data(), scratch);
  ASSERT_LE(n, oocore::encoded_bound(noise.size()));
  oocore::FrameInfo info;
  ASSERT_TRUE(oocore::peek_frame(frame.data(), n, &info));
  EXPECT_EQ(info.codec, Codec::kRaw);
  const std::size_t decoded =
      oocore::decode(frame.data(), n, out.data(), out.size(), scratch);
  EXPECT_EQ(decoded, noise.size());
  EXPECT_EQ(out, noise);
}

TEST(Codec, CorruptFramesAreRejected) {
  const auto amps = random_state(1 << 8, 5);
  const std::size_t raw = amps.size() * sizeof(Amplitude);
  std::vector<std::uint8_t> frame(oocore::encoded_bound(raw));
  oocore::CodecScratch scratch;
  const std::size_t n =
      oocore::encode(Codec::kLz, amps.data(), raw, frame.data(), scratch);
  std::vector<Amplitude> out(amps.size());
  const std::size_t cap = out.size() * sizeof(Amplitude);

  // Payload bit flip -> CRC mismatch.
  auto bad = frame;
  bad[oocore::kFrameHeaderBytes + 3] ^= 0x40;
  EXPECT_THROW(oocore::decode(bad.data(), n, out.data(), cap, scratch), Error);
  // Magic corruption.
  bad = frame;
  bad[0] = 'X';
  EXPECT_THROW(oocore::decode(bad.data(), n, out.data(), cap, scratch), Error);
  oocore::FrameInfo info;
  EXPECT_FALSE(oocore::peek_frame(bad.data(), n, &info));
  // Truncated frame.
  EXPECT_THROW(oocore::decode(frame.data(), n - 7, out.data(), cap, scratch),
               Error);
  // Destination too small.
  EXPECT_THROW(oocore::decode(frame.data(), n, out.data(), cap - 16, scratch),
               Error);
  // Intact frame still decodes after all that.
  EXPECT_EQ(oocore::decode(frame.data(), n, out.data(), cap, scratch), raw);
}

// -------------------------------------------------------- segment store

class SegmentStoreCodecs : public ::testing::TestWithParam<Codec> {};

TEST_P(SegmentStoreCodecs, WriteReadRoundTrip) {
  oocore::SegmentStoreOptions opts;
  opts.codec = GetParam();
  opts.segment_bytes = 1 << 10;  // 64 amps per segment
  const Index count = 1 << 9;
  oocore::SegmentStore store(count, opts);
  EXPECT_EQ(store.count(), count);
  EXPECT_EQ(store.segment_amps() * store.segment_count(),
            static_cast<std::size_t>(count));

  const auto amps = random_state(count, 21);
  oocore::SegmentScratch scratch;
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    store.write_segment(s, amps.data() + s * store.segment_amps(), scratch);
  }
  EXPECT_GT(store.encoded_bytes(), 0u);
  std::vector<Amplitude> out(count, Amplitude{0, 0});
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    store.read_segment(s, out.data() + s * store.segment_amps(), scratch);
  }
  if (oocore::codec_lossless(GetParam())) {
    EXPECT_EQ(std::memcmp(out.data(), amps.data(),
                          count * sizeof(Amplitude)),
              0);
  } else {
    for (Index i = 0; i < count; ++i) {
      EXPECT_NEAR(std::abs(out[i] - amps[i]), 0.0, 1e-7);
    }
  }
  const oocore::StoreStats st = store.stats();
  EXPECT_EQ(st.segments_written, store.segment_count());
  EXPECT_EQ(st.segments_read, store.segment_count());
  EXPECT_EQ(st.raw_bytes_written, count * sizeof(Amplitude));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SegmentStoreCodecs,
                         ::testing::Values(Codec::kRaw, Codec::kLz,
                                           Codec::kFp32, Codec::kFp32Lz),
                         [](const auto& info) {
                           return oocore::codec_name(info.param);
                         });

TEST(SegmentStore, ReadingUnwrittenSlotThrows) {
  oocore::SegmentStoreOptions opts;
  opts.segment_bytes = 1 << 10;
  oocore::SegmentStore store(1 << 8, opts);
  std::vector<Amplitude> out(store.segment_amps());
  oocore::SegmentScratch scratch;
  EXPECT_THROW(store.read_segment(0, out.data(), scratch), Error);
}

TEST(SegmentStore, BadDirectoryDiagnosticNamesThePath) {
  oocore::SegmentStoreOptions opts;
  opts.directory = "/nonexistent/quasar-oocore";
  try {
    oocore::SegmentStore store(1 << 8, opts);
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/quasar-oocore"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------- pipeline

TEST(SegmentPipeline, SweepVisitsEveryTileInOrderAndWritesBack) {
  oocore::SegmentStoreOptions opts;
  opts.codec = Codec::kLz;
  opts.segment_bytes = 1 << 9;  // 32 amps
  const Index count = 1 << 8;
  oocore::SegmentStore store(count, opts);
  const auto amps = random_state(count, 33);
  oocore::SegmentScratch scratch;
  const Index seg_amps = store.segment_amps();
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    store.write_segment(s, amps.data() + s * seg_amps, scratch);
  }

  oocore::PipelineOptions popts;
  popts.io_threads = 2;
  popts.depth = 3;
  oocore::SegmentPipeline pipe(store, popts);
  std::vector<oocore::SegmentPipeline::Tile> tiles(store.segment_count());
  for (std::size_t s = 0; s < tiles.size(); ++s) {
    tiles[s] = {static_cast<std::uint32_t>(s)};
  }
  std::vector<std::size_t> visit_order;
  pipe.sweep(tiles, [&](Amplitude* data, const oocore::SegmentPipeline::Tile&,
                        std::size_t tile_index) {
    visit_order.push_back(tile_index);
    for (Index i = 0; i < seg_amps; ++i) data[i] *= 2.0;
  });
  ASSERT_EQ(visit_order.size(), tiles.size());
  for (std::size_t i = 0; i < visit_order.size(); ++i) {
    EXPECT_EQ(visit_order[i], i);  // strict tile order
  }
  // Writeback persisted the doubling.
  std::vector<Amplitude> out(count);
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    store.read_segment(s, out.data() + s * seg_amps, scratch);
  }
  for (Index i = 0; i < count; ++i) {
    EXPECT_EQ(out[i], amps[i] * 2.0);
  }
  EXPECT_EQ(pipe.stats().sweeps, 1u);
  EXPECT_EQ(pipe.stats().segments, store.segment_count());
}

TEST(SegmentPipeline, GroupedTilesPackSegmentsInListOrder) {
  oocore::SegmentStoreOptions opts;
  opts.segment_bytes = 1 << 9;
  const Index count = 1 << 8;  // 8 segments of 32 amps
  oocore::SegmentStore store(count, opts);
  const Index seg_amps = store.segment_amps();
  oocore::SegmentScratch scratch;
  std::vector<Amplitude> seg(seg_amps);
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    std::fill(seg.begin(), seg.end(),
              Amplitude{static_cast<Real>(s), 0.0});
    store.write_segment(s, seg.data(), scratch);
  }
  // Tiles pairing segment s with segment s+4 (a "high bit" of 4).
  std::vector<oocore::SegmentPipeline::Tile> tiles;
  for (std::uint32_t s = 0; s < 4; ++s) tiles.push_back({s, s + 4});
  oocore::SegmentPipeline pipe(store, {});
  pipe.sweep(
      tiles,
      [&](Amplitude* data, const oocore::SegmentPipeline::Tile& tile,
          std::size_t) {
        EXPECT_EQ(data[0].real(), static_cast<Real>(tile[0]));
        EXPECT_EQ(data[seg_amps].real(), static_cast<Real>(tile[1]));
      },
      /*writeback=*/false);
  // No writeback: stores unchanged.
  store.read_segment(3, seg.data(), scratch);
  EXPECT_EQ(seg[0].real(), 3.0);
}

TEST(SegmentPipeline, ComputeExceptionPropagates) {
  oocore::SegmentStoreOptions opts;
  opts.segment_bytes = 1 << 9;
  oocore::SegmentStore store(1 << 7, opts);
  oocore::SegmentScratch scratch;
  std::vector<Amplitude> zeros(store.segment_amps(), Amplitude{0, 0});
  for (std::size_t s = 0; s < store.segment_count(); ++s) {
    store.write_segment(s, zeros.data(), scratch);
  }
  oocore::SegmentPipeline pipe(store, {});
  std::vector<oocore::SegmentPipeline::Tile> tiles(store.segment_count());
  for (std::size_t s = 0; s < tiles.size(); ++s) {
    tiles[s] = {static_cast<std::uint32_t>(s)};
  }
  EXPECT_THROW(
      pipe.sweep(tiles,
                 [&](Amplitude*, const oocore::SegmentPipeline::Tile&,
                     std::size_t i) {
                   if (i == 1) throw Error("compute failed");
                 }),
      Error);
}

// -------------------------------------------- segment-granular kernels

TEST(SegmentKernels, BaseIndexDiagonalSliceMatchesFullApply) {
  // A diagonal gate reaching ABOVE the segment exponent, applied segment
  // by segment with base_index, must be bit-identical to one full-state
  // apply_gate.
  const int n = 10, s = 4;
  auto full = random_state(Index{1} << n, 17);
  auto segmented = full;
  Rng rng(5);
  // Diagonal on locations straddling the segment boundary.
  const GateMatrix cz = gates::cz();
  const PreparedGate prep = prepare_gate(cz, {3, 7});
  apply_gate(full.data(), n, prep);

  const PreparedGate* gates[] = {&prep};
  const Index seg_amps = Index{1} << s;
  for (Index seg = 0; seg < (Index{1} << (n - s)); ++seg) {
    apply_gates_blocked(segmented.data() + seg * seg_amps, s, gates, 1, {},
                        nullptr, seg << s);
  }
  EXPECT_EQ(std::memcmp(full.data(), segmented.data(),
                        full.size() * sizeof(Amplitude)),
            0);
}

TEST(SegmentKernels, BaseIndexDenseRunMatchesFullApply) {
  // Dense gates below s plus diagonals above s in one blocked run per
  // segment: identical to per-gate full-state application.
  const int n = 9, s = 3;
  auto full = random_state(Index{1} << n, 23);
  auto segmented = full;
  Rng rng(6);
  const GateMatrix su2 = gates::random_su2(rng);
  const PreparedGate dense = prepare_gate(su2, {1});
  const PreparedGate diag = prepare_gate(gates::t(), {6});
  apply_gate(full.data(), n, dense);
  apply_gate(full.data(), n, diag);

  ApplyOptions opts;
  opts.merge_diagonals = false;
  opts.block_reorder = false;
  const PreparedGate* gates[] = {&dense, &diag};
  const Index seg_amps = Index{1} << s;
  for (Index seg = 0; seg < (Index{1} << (n - s)); ++seg) {
    apply_gates_blocked(segmented.data() + seg * seg_amps, s, gates, 2, opts,
                        nullptr, seg << s);
  }
  EXPECT_EQ(std::memcmp(full.data(), segmented.data(),
                        full.size() * sizeof(Amplitude)),
            0);
}

// --------------------------------------------------- executor parity

Circuit oocore_random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(6));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.t(a); break;
      case 2: c.sqrt_x(a); break;
      case 3: c.append_custom({a}, gates::random_su2(rng)); break;
      case 4: c.cz(a, b); break;
      case 5: c.cnot(a, b); break;
    }
  }
  return c;
}

StorageOptions oocore_storage(Codec codec) {
  StorageOptions so;
  so.medium = StorageMedium::kOocore;
  so.codec = codec;
  so.segment_bytes = 256;  // 16 amps -> many segments even at small l
  return so;
}

class OocoreExecutorParity : public ::testing::TestWithParam<Codec> {};

TEST_P(OocoreExecutorParity, MatchesInMemoryExecutor) {
  const int n = 10, l = 7;
  const Circuit c = oocore_random_circuit(n, 12 * n, 77);
  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 3;
  o.specialization = SpecializationMode::kFull;
  const Schedule sched = make_schedule(c, o);

  DistributedSimulator mem(n, l);
  mem.init_basis(0);
  mem.run(c, sched);
  const StateVector expected = mem.gather();

  DistributedSimulator ooc(n, l, {}, oocore_storage(GetParam()));
  ooc.init_basis(0);
  ooc.run(c, sched);
  const Real diff = ooc.gather().max_abs_diff(expected);
  if (oocore::codec_lossless(GetParam())) {
    // Bit parity: the pipelined path applies the same multiplies in the
    // same order as per-gate in-memory execution.
    EXPECT_EQ(diff, 0.0);
  } else {
    EXPECT_LT(diff, 1e-5);  // fp32 truncation between stages
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, OocoreExecutorParity,
                         ::testing::Values(Codec::kRaw, Codec::kLz,
                                           Codec::kFp32Lz),
                         [](const auto& info) {
                           return oocore::codec_name(info.param);
                         });

TEST(OocoreExecutor, SupremacyCircuitMatchesReference) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 4;
  const Circuit c = make_supremacy_circuit(so);
  StateVector expected(9);
  reference_run(expected, c);

  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  DistributedSimulator sim(9, 6, {}, oocore_storage(Codec::kLz));
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
  EXPECT_NEAR(sim.norm_squared(), 1.0, 1e-10);
}

TEST(OocoreExecutor, UniformInitAndSamplingMatchInMemory) {
  // init_uniform seeds the stores directly; sampling faults slices in
  // through the residency cache. Both must agree bit-for-bit with the
  // in-memory path under a lossless codec.
  const int n = 9, l = 6;
  const Circuit c = oocore_random_circuit(n, 60, 13);
  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 3;
  const Schedule sched = make_schedule(c, o);

  DistributedSimulator mem(n, l);
  mem.init_uniform();
  mem.run(c, sched);
  DistributedSimulator ooc(n, l, {}, oocore_storage(Codec::kLz));
  ooc.init_uniform();
  ooc.run(c, sched);

  EXPECT_EQ(ooc.gather().max_abs_diff(mem.gather()), 0.0);
  Rng rng_a(4), rng_b(4);
  EXPECT_EQ(mem.sample(64, rng_a), ooc.sample(64, rng_b));
}

TEST(OocoreExecutor, SequentialRunsCompose) {
  // Residency round trips: run -> gather (materializes) -> run again
  // (dematerializes first) must compose exactly like memory storage.
  const int n = 8, l = 5;
  const Circuit first = oocore_random_circuit(n, 40, 19);
  const Circuit second = oocore_random_circuit(n, 40, 20);
  ScheduleOptions o;
  o.num_local = l;
  o.kmax = 3;

  DistributedSimulator mem(n, l);
  mem.init_basis(0);
  mem.run(first, make_schedule(first, o));
  mem.run(second, make_schedule(second, o));

  DistributedSimulator ooc(n, l, {}, oocore_storage(Codec::kLz));
  ooc.init_basis(0);
  ooc.run(first, make_schedule(first, o));
  ooc.gather();  // force materialization between the runs
  ooc.run(second, make_schedule(second, o));
  EXPECT_EQ(ooc.gather().max_abs_diff(mem.gather()), 0.0);
}

}  // namespace
}  // namespace quasar
