#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "perfmodel/comm_model.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/roofline.hpp"
#include "perfmodel/run_model.hpp"

namespace quasar {
namespace {

TEST(Machines, PaperConstants) {
  const MachineModel edison = edison_socket();
  EXPECT_DOUBLE_EQ(edison.peak_gflops, 230.4);
  EXPECT_DOUBLE_EQ(edison.dram_bw_gbs, 52.0);
  EXPECT_EQ(edison.cores, 12);
  EXPECT_FALSE(edison.fma);

  const MachineModel knl = cori_knl_node();
  EXPECT_DOUBLE_EQ(knl.peak_gflops, 3133.4);
  EXPECT_DOUBLE_EQ(knl.fast_bw_gbs, 460.0);
  EXPECT_DOUBLE_EQ(knl.dram_bw_gbs, 115.2);
  EXPECT_EQ(knl.cores, 68);
  EXPECT_TRUE(knl.fma);
  EXPECT_EQ(knl.effective_cache_ways, 8);
}

TEST(Machines, HostDetection) {
  const MachineModel host = host_machine(/*measure_bandwidth=*/false);
  EXPECT_GE(host.cores, 1);
  EXPECT_GE(host.simd_complex_width, 1);
  EXPECT_GT(host.peak_gflops, 0.0);
}

TEST(Roofline, BandwidthBoundAtLowIntensity) {
  const MachineModel knl = cori_knl_node();
  const double oi1 = 14.0 / 32.0;
  const double perf = roofline_attainable(knl, oi1, OptStep::kStep3);
  EXPECT_NEAR(perf, oi1 * knl.achievable_bw(), 1e-9);
  EXPECT_LT(perf, step_ceiling(knl, OptStep::kStep3));
}

TEST(Roofline, StepsAreMonotone) {
  for (const MachineModel& m : {edison_socket(), cori_knl_node()}) {
    const double oi4 = 126.0 / 32.0;
    const double s1 = roofline_attainable(m, oi4, OptStep::kStep1);
    const double s2 = roofline_attainable(m, oi4, OptStep::kStep2);
    const double s3 = roofline_attainable(m, oi4, OptStep::kStep3);
    EXPECT_LE(s1, s2) << m.name;
    EXPECT_LE(s2, s3) << m.name;
  }
}

TEST(Roofline, BaselineBelowStep1) {
  const MachineModel m = edison_socket();
  const double oi1 = 14.0 / 32.0;
  EXPECT_LT(roofline_attainable(m, oi1, OptStep::kBaseline),
            roofline_attainable(m, oi1, OptStep::kStep1));
}

TEST(Roofline, ModelPointsCoverBothKernels) {
  const auto points = roofline_model_points(cori_knl_node());
  EXPECT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    EXPECT_GT(p.gflops, 0.0) << p.label;
    EXPECT_GT(p.oi, 0.0);
  }
}

TEST(KernelModel, MatchesPaperFig6Shape) {
  // KNL low-order: memory bound through k~3, compute bound at k=5,
  // roughly doubling per k early on (Fig. 6).
  const MachineModel knl = cori_knl_node();
  double previous = 0.0;
  for (int k = 1; k <= 5; ++k) {
    // Non-decreasing: the k=4 and k=5 kernels both sit at the compute
    // ceiling.
    const double perf = kernel_gflops(knl, k, /*high_order=*/false);
    EXPECT_GE(perf, previous) << "k=" << k;
    previous = perf;
  }
  // Calibration anchors (within 25% of Fig. 6 readings).
  EXPECT_NEAR(kernel_gflops(knl, 1, false), 120.0, 30.0);
  EXPECT_NEAR(kernel_gflops(knl, 5, false), 1065.0, 270.0);
}

TEST(KernelModel, HighOrderPenaltyOnsetAtAssociativity) {
  const MachineModel knl = cori_knl_node();
  // 2^k <= 8 ways: no penalty.
  for (int k = 1; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(kernel_gflops(knl, k, true),
                     kernel_gflops(knl, k, false));
  }
  // k = 4, 5: penalized by 2^k / ways (Fig. 6: roughly 2x and 3-4x).
  EXPECT_NEAR(kernel_gflops(knl, 4, true) * 2.0,
              kernel_gflops(knl, 4, false), 1e-9);
  EXPECT_NEAR(kernel_gflops(knl, 5, true) * 4.0,
              kernel_gflops(knl, 5, false), 1e-9);
}

TEST(KernelModel, StrongScalingSaturatesForSmallK) {
  // Fig. 7/10: the 1-qubit kernel stops scaling once bandwidth is
  // saturated; the 5-qubit kernel keeps scaling with cores.
  const MachineModel knl = cori_knl_node();
  const double k1_half = kernel_gflops_cores(knl, 1, 34);
  const double k1_full = kernel_gflops_cores(knl, 1, 68);
  EXPECT_NEAR(k1_half, k1_full, 1e-9);  // saturated

  const double k5_half = kernel_gflops_cores(knl, 5, 34);
  const double k5_full = kernel_gflops_cores(knl, 5, 68);
  EXPECT_GT(k5_full, 1.7 * k5_half);  // near-linear
}

TEST(KernelModel, SpillDoublesTime) {
  // Sec. 4.1.2: exceeding MCDRAM costs ~2x for bandwidth-bound kernels.
  const MachineModel knl = cori_knl_node();
  const double in_fast = kernel_seconds(knl, 4, 29);
  const double spilled = kernel_seconds_spilled(knl, 4, 31) / 4.0;
  // Per-amplitude: spilled/4 compares a 31-qubit sweep (4x amplitudes)
  // against the 29-qubit in-MCDRAM sweep.
  EXPECT_GT(spilled, 1.5 * in_fast);
  EXPECT_LT(spilled, 3.5 * in_fast);
}

TEST(CommModel, CalibrationAnchors) {
  // Within 60% of the paper's published communication times (Table 2).
  const InterconnectModel net = aries_dragonfly();
  const double gb = 1e9;
  const double t36 = net.alltoall_seconds(64, 17.18 * gb);
  EXPECT_NEAR(t36, 12.4, 0.6 * 12.4);
  const double t42 = 2 * net.alltoall_seconds(4096, 17.18 * gb);
  EXPECT_NEAR(t42, 57.1, 0.6 * 57.1);
  const double t45 = 2 * net.alltoall_seconds(8192, 68.7 * gb);
  EXPECT_NEAR(t45, 431.0, 0.6 * 431.0);
}

TEST(CommModel, BandwidthDecaysWithScale) {
  const InterconnectModel net = aries_dragonfly();
  EXPECT_GT(net.alltoall_bw_gbs(64), net.alltoall_bw_gbs(1024));
  EXPECT_GT(net.alltoall_bw_gbs(1024), net.alltoall_bw_gbs(8192));
  EXPECT_EQ(net.alltoall_seconds(1, 1e9), 0.0);
}

TEST(CommModel, PairwiseGateCheaperThanSwap) {
  // Fig. 5 caption: a dense global gate costs ~1/2 of a full swap.
  const InterconnectModel net = aries_dragonfly();
  const double swap = net.alltoall_seconds(4096, 17.18e9);
  const double gate = net.pairwise_gate_seconds(4096, 17.18e9);
  EXPECT_LT(gate, swap);
  EXPECT_GT(gate, 0.25 * swap);
}

TEST(RunModel, SupremacySpeedupOverBaselineIsLarge) {
  // Table 2's headline: >10x speedup over the per-gate baseline at 64+
  // nodes. Evaluated on a real schedule of a depth-25 36-qubit circuit.
  const auto [rows, cols] = supremacy_grid_for_qubits(36);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  const Circuit c = make_supremacy_circuit(so);

  ScheduleOptions o;
  o.num_local = 30;
  o.kmax = 5;
  o.build_matrices = false;
  const Schedule s = make_schedule(c, o);

  const MachineModel knl = cori_knl_node();
  const InterconnectModel net = aries_dragonfly();
  const RunPrediction ours = model_run(c, s, knl, net, 64);
  const RunPrediction baseline = model_baseline_run(
      c, 30, SpecializationMode::kWorstCase, knl, net, 64);

  EXPECT_GT(baseline.total_seconds() / ours.total_seconds(), 5.0);
  EXPECT_GT(ours.comm_fraction(), 0.1);
  EXPECT_LT(ours.comm_fraction(), 0.95);
  EXPECT_GT(ours.sustained_pflops(), 0.0);
}

TEST(RunModel, BlockedExecutorPrediction) {
  // With 30 local qubits the installed block exponent (15 by default)
  // fits, low-location cluster runs share one streaming sweep, and the
  // blocked prediction can only improve on one-sweep-per-cluster.
  const auto [rows, cols] = supremacy_grid_for_qubits(36);
  SupremacyOptions so;
  so.rows = rows;
  so.cols = cols;
  so.depth = 25;
  const Circuit c = make_supremacy_circuit(so);

  ScheduleOptions o;
  o.num_local = 30;
  o.kmax = 5;
  o.build_matrices = false;
  const Schedule s = make_schedule(c, o);
  const RunPrediction p =
      model_run(c, s, cori_knl_node(), aries_dragonfly(), 64);

  EXPECT_GT(p.blocked_kernel_seconds, 0.0);
  EXPECT_GT(p.blocked_runs, 0);
  EXPECT_GT(p.blocked_sweeps_saved, 0);
  EXPECT_LE(p.blocked_kernel_seconds, p.kernel_seconds);
  EXPECT_LE(p.blocked_total_seconds(), p.total_seconds());
}

TEST(RunModel, BlockedPredictionEqualsPlainWhenDisabled) {
  // Too few local qubits for the installed block exponent: the blocked
  // executor degenerates to per-item sweeps and the predictions agree.
  const Circuit c = make_supremacy_circuit({3, 3, 10, 0, true});
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  o.build_matrices = false;
  const Schedule s = make_schedule(c, o);
  const RunPrediction p =
      model_run(c, s, cori_knl_node(), aries_dragonfly(), 8);
  EXPECT_EQ(p.blocked_runs, 0);
  EXPECT_EQ(p.blocked_sweeps_saved, 0);
  EXPECT_DOUBLE_EQ(p.blocked_kernel_seconds, p.kernel_seconds);
}

TEST(RunModel, Validation) {
  const Circuit c = make_supremacy_circuit({3, 3, 10, 0, true});
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  o.build_matrices = false;
  const Schedule s = make_schedule(c, o);
  const MachineModel knl = cori_knl_node();
  const InterconnectModel net = aries_dragonfly();
  EXPECT_THROW(model_run(c, s, knl, net, 16), Error);  // wrong node count
  EXPECT_THROW(model_run(c, s, knl, net, 7), Error);   // not a power of 2
  const RunPrediction p = model_run(c, s, knl, net, 8);
  EXPECT_GE(p.swaps, 0);
}

TEST(Machines, StreamTriadMeasurable) {
  const double bw = measure_stream_triad_gbs();
  EXPECT_GT(bw, 0.5);    // any machine moves at least this
  EXPECT_LT(bw, 2000.0); // and no DDR system exceeds this
}

}  // namespace
}  // namespace quasar
