#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "sched/report.hpp"

namespace quasar {
namespace {

Schedule small_schedule(const Circuit& c, int num_local) {
  ScheduleOptions o;
  o.num_local = num_local;
  o.kmax = 3;
  return make_schedule(c, o);
}

TEST(Report, SummaryMentionsKeyQuantities) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 12;
  const Circuit c = make_supremacy_circuit(so);
  const Schedule s = small_schedule(c, 6);
  const std::string summary = schedule_summary(c, s);
  EXPECT_NE(summary.find("9 qubits"), std::string::npos);
  EXPECT_NE(summary.find("global-to-local swap"), std::string::npos);
  EXPECT_NE(summary.find("stage 0"), std::string::npos);
  EXPECT_NE(summary.find("cluster"), std::string::npos);
}

TEST(Report, SummaryShowsSwapDeltas) {
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 20;
  const Circuit c = make_supremacy_circuit(so);
  const Schedule s = small_schedule(c, 5);
  if (s.num_swaps() > 0) {
    const std::string summary = schedule_summary(c, s);
    EXPECT_NE(summary.find("swap:"), std::string::npos);
    EXPECT_NE(summary.find("all-to-all"), std::string::npos);
  }
}

TEST(Report, RenderStageShowsRowsPerLocation) {
  Circuit c(4);
  c.h(0);
  c.cz(0, 1);
  c.h(2);
  c.t(3);
  const Schedule s = small_schedule(c, 3);
  const std::string art = render_stage(c, s, 0);
  EXPECT_NE(art.find("b0"), std::string::npos);
  EXPECT_NE(art.find("b3"), std::string::npos);
  EXPECT_NE(art.find("stage 0"), std::string::npos);
}

TEST(Report, RenderStageValidatesIndex) {
  Circuit c(3);
  c.h(0);
  const Schedule s = small_schedule(c, 3);
  EXPECT_THROW(render_stage(c, s, 5), Error);
}

}  // namespace
}  // namespace quasar
