/// \file block_apply_test.cpp
/// \brief Differential tests for cache-blocked multi-gate execution
/// (kernels/block_apply.hpp): blocked runs vs the gate-by-gate oracle,
/// planner unit tests, executor/simulator integration, fp32 mirror.

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "circuit/supremacy.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "fp32/kernels_f32.hpp"
#include "fp32/statevector_f32.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"
#include "kernels/autotune.hpp"
#include "kernels/block_apply.hpp"
#include "sched/executor.hpp"
#include "simulator/simulator.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

/// Fills a state with a random normalized vector.
void randomize(StateVector& state, Rng& rng) {
  for (Index i = 0; i < state.size(); ++i) {
    state[i] = Amplitude{rng.normal(), rng.normal()};
  }
  const Real norm = std::sqrt(state.norm_squared());
  for (Index i = 0; i < state.size(); ++i) state[i] /= norm;
}

/// Random dense unitary on k qubits.
GateMatrix random_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 2; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cnot().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}

/// Random distinct bit-locations.
std::vector<int> random_locations(int k, int n, Rng& rng) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i) {
    std::swap(all[i], all[i + rng.uniform_int(n - i)]);
  }
  return std::vector<int>(all.begin(), all.begin() + k);
}

/// Mixed gate list: dense k = 1..3 and diagonal k = 1..2, locations
/// anywhere — exercises eligible runs, high-location solos, and the
/// diagonal-anywhere path in one stage.
std::vector<PreparedGate> random_stage(int n, int length, Rng& rng) {
  std::vector<PreparedGate> gates;
  gates.reserve(length);
  for (int i = 0; i < length; ++i) {
    switch (rng.uniform_int(5)) {
      case 0:
        gates.push_back(prepare_gate(gates::random_su2(rng),
                                     {static_cast<int>(rng.uniform_int(n))}));
        break;
      case 1:
        gates.push_back(
            prepare_gate(random_unitary(2, rng), random_locations(2, n, rng)));
        break;
      case 2:
        gates.push_back(
            prepare_gate(random_unitary(3, rng), random_locations(3, n, rng)));
        break;
      case 3:
        gates.push_back(
            prepare_gate(gates::cz(), random_locations(2, n, rng)));
        break;
      default:
        gates.push_back(prepare_gate(
            gates::t(), {static_cast<int>(rng.uniform_int(n))}));
        break;
    }
  }
  return gates;
}

std::vector<const PreparedGate*> pointers(
    const std::vector<PreparedGate>& gates) {
  std::vector<const PreparedGate*> ptrs;
  ptrs.reserve(gates.size());
  for (const PreparedGate& g : gates) ptrs.push_back(&g);
  return ptrs;
}

bool bitwise_equal(const StateVector& a, const StateVector& b) {
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(Amplitude)) ==
         0;
}

/// Plain gate-by-gate options: blocking force-disabled, same backend.
ApplyOptions plain_options(const ApplyOptions& base) {
  ApplyOptions plain = base;
  plain.block_exponent = -1;
  return plain;
}

TEST(BlockApply, EffectiveBlockExponent) {
  ApplyOptions o;
  o.block_exponent = -1;
  EXPECT_EQ(effective_block_exponent(20, o), -1);
  o.block_exponent = 1;  // degenerate, never clamped up
  EXPECT_EQ(effective_block_exponent(20, o), -1);
  o.block_exponent = 8;
  EXPECT_EQ(effective_block_exponent(10, o), 8);
  EXPECT_EQ(effective_block_exponent(9, o), -1);  // fewer than 4 blocks
  o.block_exponent = 0;  // fall back to the installed configuration
  const int b = block_run_config().block_exponent;
  EXPECT_EQ(effective_block_exponent(b + 2, o), b);
  EXPECT_EQ(effective_block_exponent(b + 1, o), -1);
}

TEST(BlockApply, MinRunLengthResolution) {
  ApplyOptions o;
  o.min_run_length = 7;
  EXPECT_EQ(effective_min_run_length(o), 7);
  o.min_run_length = 0;
  EXPECT_EQ(effective_min_run_length(o),
            std::max(1, block_run_config().min_run_length));
}

TEST(BlockApply, Eligibility) {
  Rng rng(3);
  const PreparedGate low = prepare_gate(random_unitary(2, rng), {2, 3});
  EXPECT_TRUE(block_run_eligible(low, 4));
  EXPECT_FALSE(block_run_eligible(low, 3));

  // Diagonal gates join at any location.
  const PreparedGate diag = prepare_gate(gates::cz(), {3, 9});
  EXPECT_TRUE(block_run_eligible(diag, 2));

  // Dense 1-qubit at a high location never fits a small block.
  const PreparedGate h5 = prepare_gate(gates::h(), {5});
  EXPECT_TRUE(block_run_eligible(h5, 6));
  EXPECT_FALSE(block_run_eligible(h5, 5));

  // Low-location 1-qubit: when the SIMD backend pre-widens, eligibility
  // follows the widened (spectator-including) span.
  const PreparedGate h0 = prepare_gate(gates::h(), {0});
  if (simd_complex_width() > 1) {
    ASSERT_NE(h0.widened, nullptr);
    EXPECT_EQ(h0.widened->qubits, (std::vector<int>{0, 1}));
  } else {
    EXPECT_EQ(h0.widened, nullptr);
  }
  EXPECT_TRUE(block_run_eligible(h0, 2));
}

TEST(PreparedGate, WidenedCacheOnlyForLowDenseK1) {
  // Diagonal and wide gates never carry the pre-widened embedding.
  EXPECT_EQ(prepare_gate(gates::t(), {0}).widened, nullptr);
  Rng rng(5);
  EXPECT_EQ(prepare_gate(random_unitary(2, rng), {0, 1}).widened, nullptr);
  // High-location k = 1 does not defeat the SIMD shapes.
  EXPECT_EQ(prepare_gate(gates::h(), {6}).widened, nullptr);
}

TEST(PlanGateRuns, ConsecutiveRunsWithoutReorder) {
  const GateShape e1{0x1, true}, e2{0x2, true}, e8{0x8, true};
  const GateShape s4{0x4, false}, s2{0x2, false};
  const std::vector<GateShape> shapes = {e1, e2, s4, e1, e2, e8, s2};
  const auto segs = plan_gate_runs(shapes, false);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].run, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(segs[0].solo, (std::vector<std::size_t>{2}));
  EXPECT_EQ(segs[1].run, (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_EQ(segs[1].solo, (std::vector<std::size_t>{6}));
}

TEST(PlanGateRuns, ReorderHoistsOnlyDisjointGates) {
  // Gate 2 commutes with the deferred solo (disjoint masks) and hoists
  // into the run; gate 3 overlaps the deferred mask and must not.
  const std::vector<GateShape> shapes = {
      {0b001, true}, {0b100, false}, {0b011, true}, {0b110, true}};
  const auto segs = plan_gate_runs(shapes, true);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].run, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(segs[0].solo, (std::vector<std::size_t>{1, 3}));
}

TEST(PlanGateRuns, FlushesAtDeferredCap) {
  const std::vector<GateShape> shapes(17, GateShape{0x1, false});
  const auto segs = plan_gate_runs(shapes, true);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].solo.size(), 16u);
  EXPECT_EQ(segs[1].solo.size(), 1u);
}

TEST(BlockApply, ApplyGateRunValidates) {
  StateVector state(8);
  const PreparedGate high = prepare_gate(gates::h(), {7});
  const PreparedGate* gates[] = {&high};
  EXPECT_THROW(apply_gate_run(state.data(), 8, gates, 1, 4), Error);
  EXPECT_THROW(apply_gate_run(state.data(), 8, gates, 0, 4), Error);
}

// Randomized stages against the gate-by-gate oracle, across block
// exponents at/below the SIMD-width floor, min-run lengths, thread counts
// (including non-power-of-two), and both planner modes.
using DiffParam = std::tuple<int /*b*/, int /*min_run*/, int /*threads*/,
                             bool /*reorder*/, int /*seed*/>;
class BlockApplyDiff : public ::testing::TestWithParam<DiffParam> {};

TEST_P(BlockApplyDiff, MatchesGateByGateOracle) {
  const auto [b, min_run, threads, reorder, seed] = GetParam();
  const int n = 10;
  Rng rng(static_cast<std::uint64_t>(seed));
  const int length = 1 + static_cast<int>(rng.uniform_int(16));
  const std::vector<PreparedGate> gates = random_stage(n, length, rng);
  const std::vector<const PreparedGate*> ptrs = pointers(gates);

  StateVector blocked(n), oracle(n);
  randomize(blocked, rng);
  for (Index i = 0; i < blocked.size(); ++i) oracle[i] = blocked[i];

  ApplyOptions o;
  o.block_exponent = b;
  o.min_run_length = min_run;
  o.num_threads = threads;
  o.block_reorder = reorder;
  BlockRunStats stats;
  apply_gates_blocked(blocked.data(), n, ptrs.data(), ptrs.size(), o, &stats);
  EXPECT_EQ(stats.gates, ptrs.size());
  EXPECT_GE(stats.sweeps, 1u);
  EXPECT_LE(stats.sweeps, ptrs.size());
  EXPECT_EQ(stats.sweeps + stats.sweeps_saved(), stats.gates);

  const ApplyOptions plain = plain_options(o);
  for (const PreparedGate* g : ptrs) {
    apply_gate(oracle.data(), n, *g, plain);
  }
  // Hoisting is algebraically exact; only FP summation order differs.
  EXPECT_LT(blocked.max_abs_diff(oracle), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockApplyDiff,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2), ::testing::Values(0, 3),
                       ::testing::Bool(), ::testing::Values(1, 2)));

TEST(BlockApply, ScalarBackendBitIdenticalWithoutReorder) {
  const int n = 10;
  for (int seed = 1; seed <= 3; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const std::vector<PreparedGate> gates = random_stage(n, 12, rng);
    const std::vector<const PreparedGate*> ptrs = pointers(gates);
    StateVector blocked(n), oracle(n);
    randomize(blocked, rng);
    for (Index i = 0; i < blocked.size(); ++i) oracle[i] = blocked[i];

    ApplyOptions o;
    o.backend = KernelBackend::kScalar;
    o.block_exponent = 4;
    o.min_run_length = 1;
    o.block_reorder = false;
    o.merge_diagonals = false;
    apply_gates_blocked(blocked.data(), n, ptrs.data(), ptrs.size(), o);
    const ApplyOptions plain = plain_options(o);
    for (const PreparedGate* g : ptrs) {
      apply_gate(oracle.data(), n, *g, plain);
    }
    EXPECT_TRUE(bitwise_equal(blocked, oracle)) << "seed " << seed;
  }
}

TEST(BlockApply, AutoBackendBitIdenticalAboveSimdFloor) {
  // With 2^(b-1) >= the SIMD width every in-block kernel picks the same
  // shape as the full-state sweep, so order-preserving blocking is
  // bit-identical to plain dispatch.
  const int n = 10, b = 6;
  for (int seed = 1; seed <= 3; ++seed) {
    Rng rng(static_cast<std::uint64_t>(10 + seed));
    const std::vector<PreparedGate> gates = random_stage(n, 14, rng);
    const std::vector<const PreparedGate*> ptrs = pointers(gates);
    StateVector blocked(n), oracle(n);
    randomize(blocked, rng);
    for (Index i = 0; i < blocked.size(); ++i) oracle[i] = blocked[i];

    ApplyOptions o;
    o.block_exponent = b;
    o.min_run_length = 1;
    o.block_reorder = false;
    o.merge_diagonals = false;
    o.num_threads = 3;
    apply_gates_blocked(blocked.data(), n, ptrs.data(), ptrs.size(), o);
    const ApplyOptions plain = plain_options(o);
    for (const PreparedGate* g : ptrs) {
      apply_gate(oracle.data(), n, *g, plain);
    }
    EXPECT_TRUE(bitwise_equal(blocked, oracle)) << "seed " << seed;
  }
}

TEST(BlockApply, DiagonalAtHighLocationJoinsRunBitIdentical) {
  const int n = 10, b = 4;
  Rng rng(21);
  std::vector<PreparedGate> gates;
  gates.push_back(prepare_gate(gates::random_su2(rng), {1}));
  gates.push_back(prepare_gate(gates::cz(), {7, 9}));      // all-high diagonal
  gates.push_back(prepare_gate(gates::t(), {8}));          // high diagonal
  gates.push_back(prepare_gate(gates::random_su2(rng), {2}));
  gates.push_back(prepare_gate(gates::cz(), {0, 9}));      // split diagonal
  const std::vector<const PreparedGate*> ptrs = pointers(gates);

  StateVector blocked(n), oracle(n);
  randomize(blocked, rng);
  for (Index i = 0; i < blocked.size(); ++i) oracle[i] = blocked[i];

  ApplyOptions o;
  o.block_exponent = b;
  o.min_run_length = 1;
  o.block_reorder = false;
  o.merge_diagonals = false;
  BlockRunStats stats;
  apply_gates_blocked(blocked.data(), n, ptrs.data(), ptrs.size(), o, &stats);
  // Every gate is eligible: one run, one sweep for the whole stage.
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.run_gates, 5u);
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.sweeps_saved(), 4u);

  const ApplyOptions plain = plain_options(o);
  for (const PreparedGate* g : ptrs) {
    apply_gate(oracle.data(), n, *g, plain);
  }
  EXPECT_TRUE(bitwise_equal(blocked, oracle));
}

TEST(BlockApply, MergeDiagonalGatesProducesExactProductTable) {
  const PreparedGate t0 = prepare_gate(gates::t(), {0});
  const PreparedGate cz02 = prepare_gate(gates::cz(), {0, 2});
  const PreparedGate cz57 = prepare_gate(gates::cz(), {5, 7});
  const PreparedGate* list[] = {&t0, &cz02, &cz57};
  const PreparedGate merged = merge_diagonal_gates(list, 3);
  EXPECT_TRUE(merged.diagonal);
  EXPECT_EQ(merged.qubits, (std::vector<int>{0, 2, 5, 7}));
  EXPECT_EQ(merged.k, 4);
  EXPECT_EQ(merged.dim, Index{16});
  for (Index idx = 0; idx < merged.dim; ++idx) {
    const Index b0 = idx & 1, b2 = (idx >> 1) & 1;
    const Index b5 = (idx >> 2) & 1, b7 = (idx >> 3) & 1;
    const Amplitude want =
        t0.diag[b0] * cz02.diag[b0 | (b2 << 1)] * cz57.diag[b5 | (b7 << 1)];
    EXPECT_EQ(merged.diag[idx], want) << "idx " << idx;
  }

  const PreparedGate dense = prepare_gate(gates::h(), {1});
  const PreparedGate* bad[] = {&dense};
  EXPECT_THROW(merge_diagonal_gates(bad, 1), Error);
  EXPECT_THROW(merge_diagonal_gates(list, 0), Error);
}

TEST(BlockApply, DiagonalCoalescingSavesPassesWithinTolerance) {
  const int n = 10, b = 5;
  Rng rng(81);
  std::vector<PreparedGate> gates;
  gates.push_back(prepare_gate(gates::random_su2(rng), {0}));
  gates.push_back(prepare_gate(gates::cz(), {0, 1}));  // four consecutive
  gates.push_back(prepare_gate(gates::cz(), {2, 3}));  // diagonals: one
  gates.push_back(prepare_gate(gates::t(), {8}));      // merged pass
  gates.push_back(prepare_gate(gates::cz(), {4, 9}));
  gates.push_back(prepare_gate(gates::random_su2(rng), {2}));
  const std::vector<const PreparedGate*> ptrs = pointers(gates);

  StateVector merged(n), unmerged(n), oracle(n);
  randomize(merged, rng);
  for (Index i = 0; i < merged.size(); ++i) {
    unmerged[i] = merged[i];
    oracle[i] = merged[i];
  }

  ApplyOptions o;
  o.block_exponent = b;
  o.min_run_length = 1;
  o.block_reorder = false;
  BlockRunStats stats;
  apply_gates_blocked(merged.data(), n, ptrs.data(), ptrs.size(), o, &stats);
  // The four diagonals collapse into one in-block pass; sweep accounting
  // is unchanged (coalescing only affects work inside the run's sweep).
  EXPECT_EQ(stats.coalesced, 3u);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.run_gates, 6u);
  EXPECT_EQ(stats.sweeps, 1u);

  ApplyOptions om = o;
  om.merge_diagonals = false;
  BlockRunStats stats_off;
  apply_gates_blocked(unmerged.data(), n, ptrs.data(), ptrs.size(), om,
                      &stats_off);
  EXPECT_EQ(stats_off.coalesced, 0u);

  const ApplyOptions plain = plain_options(o);
  for (const PreparedGate* g : ptrs) {
    apply_gate(oracle.data(), n, *g, plain);
  }
  // Without merging the run is bit-identical; the merged table is the
  // exact composite operator up to table-rounding ulps.
  EXPECT_TRUE(bitwise_equal(unmerged, oracle));
  EXPECT_LT(merged.max_abs_diff(oracle), 1e-12);
}

TEST(BlockApply, MinRunLengthAndHoistStats) {
  const int n = 10, b = 4;
  Rng rng(31);
  std::vector<PreparedGate> gates;
  gates.push_back(prepare_gate(gates::random_su2(rng), {0}));
  gates.push_back(prepare_gate(gates::random_su2(rng), {1}));
  gates.push_back(prepare_gate(gates::x(), {9}));  // dense high: solo
  gates.push_back(prepare_gate(gates::random_su2(rng), {2}));
  gates.push_back(prepare_gate(gates::random_su2(rng), {3}));
  const std::vector<const PreparedGate*> ptrs = pointers(gates);

  StateVector state(n), oracle(n);
  randomize(state, rng);
  for (Index i = 0; i < state.size(); ++i) oracle[i] = state[i];
  const ApplyOptions base;
  for (const PreparedGate* g : ptrs) {
    apply_gate(oracle.data(), n, *g, plain_options(base));
  }

  {  // min_run 3: both 2-gate spans fall back to plain sweeps.
    StateVector s(n);
    for (Index i = 0; i < s.size(); ++i) s[i] = state[i];
    ApplyOptions o;
    o.block_exponent = b;
    o.min_run_length = 3;
    o.block_reorder = false;
    BlockRunStats stats;
    apply_gates_blocked(s.data(), n, ptrs.data(), ptrs.size(), o, &stats);
    EXPECT_EQ(stats.runs, 0u);
    EXPECT_EQ(stats.run_gates, 0u);
    EXPECT_EQ(stats.sweeps, 5u);
    EXPECT_EQ(stats.hoisted, 0u);
    EXPECT_LT(s.max_abs_diff(oracle), 1e-12);
  }
  {  // min_run 2, consecutive: two blocked runs around the solo.
    StateVector s(n);
    for (Index i = 0; i < s.size(); ++i) s[i] = state[i];
    ApplyOptions o;
    o.block_exponent = b;
    o.min_run_length = 2;
    o.block_reorder = false;
    BlockRunStats stats;
    apply_gates_blocked(s.data(), n, ptrs.data(), ptrs.size(), o, &stats);
    EXPECT_EQ(stats.runs, 2u);
    EXPECT_EQ(stats.run_gates, 4u);
    EXPECT_EQ(stats.sweeps, 3u);
    EXPECT_EQ(stats.hoisted, 0u);
    EXPECT_LT(s.max_abs_diff(oracle), 1e-12);
  }
  {  // Reorder: the trailing pair hoists over the disjoint solo gate.
    StateVector s(n);
    for (Index i = 0; i < s.size(); ++i) s[i] = state[i];
    ApplyOptions o;
    o.block_exponent = b;
    o.min_run_length = 2;
    o.block_reorder = true;
    BlockRunStats stats;
    apply_gates_blocked(s.data(), n, ptrs.data(), ptrs.size(), o, &stats);
    EXPECT_EQ(stats.runs, 1u);
    EXPECT_EQ(stats.run_gates, 4u);
    EXPECT_EQ(stats.sweeps, 2u);
    EXPECT_EQ(stats.hoisted, 2u);
    EXPECT_LT(s.max_abs_diff(oracle), 1e-12);
  }
}

TEST(BlockApply, DisabledPathMatchesPlainExactly) {
  const int n = 8;
  Rng rng(41);
  const std::vector<PreparedGate> gates = random_stage(n, 6, rng);
  const std::vector<const PreparedGate*> ptrs = pointers(gates);
  StateVector a(n), b(n);
  randomize(a, rng);
  for (Index i = 0; i < a.size(); ++i) b[i] = a[i];
  ApplyOptions o;
  o.block_exponent = -1;
  BlockRunStats stats;
  apply_gates_blocked(a.data(), n, ptrs.data(), ptrs.size(), o, &stats);
  EXPECT_EQ(stats.runs, 0u);
  EXPECT_EQ(stats.sweeps, ptrs.size());
  for (const PreparedGate* g : ptrs) {
    apply_gate(b.data(), n, *g, o);
  }
  EXPECT_TRUE(bitwise_equal(a, b));
}

TEST(RunFused, BlockedMatchesPlainExecution) {
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 5;
  so.depth = 8;
  so.seed = 1;
  const Circuit circuit = make_supremacy_circuit(so);

  Rng rng(51);
  StateVector blocked(10), ordered(10), plain(10);
  randomize(blocked, rng);
  for (Index i = 0; i < blocked.size(); ++i) {
    ordered[i] = blocked[i];
    plain[i] = blocked[i];
  }

  FusedRunOptions po;
  po.apply.block_exponent = -1;
  run_fused(plain, circuit, po);

  // Order-preserving blocking: bit-identical to the plain executor.
  FusedRunOptions oo;
  oo.apply.block_exponent = 6;
  oo.apply.min_run_length = 1;
  oo.apply.block_reorder = false;
  oo.apply.merge_diagonals = false;
  run_fused(ordered, circuit, oo);
  EXPECT_TRUE(bitwise_equal(ordered, plain));

  // Commuting hoists: exact algebra, FP-rounding-level differences only.
  FusedRunOptions bo;
  bo.apply.block_exponent = 6;
  bo.apply.num_threads = 3;
  run_fused(blocked, circuit, bo);
  EXPECT_LT(blocked.max_abs_diff(plain), 1e-12);
}

TEST(Simulator, RunBlockedMatchesGateByGate) {
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 5;
  so.depth = 6;
  so.seed = 2;
  const Circuit circuit = make_supremacy_circuit(so);

  Rng rng(61);
  StateVector s1(10), s2(10);
  randomize(s1, rng);
  for (Index i = 0; i < s1.size(); ++i) s2[i] = s1[i];

  ApplyOptions bo;
  bo.block_exponent = 6;
  bo.min_run_length = 1;
  bo.block_reorder = false;
  bo.merge_diagonals = false;
  Simulator blocked(s1, bo);
  blocked.run(circuit);

  ApplyOptions po;
  po.block_exponent = -1;
  Simulator reference(s2, po);
  reference.run(circuit);

  EXPECT_TRUE(bitwise_equal(s1, s2));
}

TEST(Fp32BlockApply, BitIdenticalToPlainAndCloseToDouble) {
  const int n = 10;
  Rng rng(71);
  const std::vector<PreparedGate> gates = random_stage(n, 12, rng);
  std::vector<PreparedGateF> gates_f;
  gates_f.reserve(gates.size());
  for (const PreparedGate& g : gates) {
    gates_f.push_back(prepare_gate_f32(g.matrix, g.qubits));
  }
  std::vector<const PreparedGateF*> ptrs_f;
  for (const PreparedGateF& g : gates_f) ptrs_f.push_back(&g);

  StateVector oracle(n);
  randomize(oracle, rng);
  StateVectorF blocked(n), plain(n);
  for (Index i = 0; i < oracle.size(); ++i) {
    const AmplitudeF v{static_cast<float>(oracle[i].real()),
                       static_cast<float>(oracle[i].imag())};
    blocked[i] = v;
    plain[i] = v;
  }

  ApplyOptions o;
  o.block_exponent = 4;
  o.min_run_length = 1;
  o.block_reorder = false;
  o.merge_diagonals = false;
  o.num_threads = 3;
  BlockRunStats stats;
  apply_gates_blocked_f32(blocked.data(), n, ptrs_f.data(), ptrs_f.size(), o,
                          &stats);
  EXPECT_EQ(stats.gates, ptrs_f.size());
  EXPECT_LE(stats.sweeps, ptrs_f.size());

  for (const PreparedGateF* g : ptrs_f) {
    apply_gate_f32(plain.data(), n, *g, o.num_threads);
  }
  EXPECT_EQ(std::memcmp(blocked.data(), plain.data(),
                        static_cast<std::size_t>(blocked.size()) *
                            sizeof(AmplitudeF)),
            0);

  const std::vector<const PreparedGate*> ptrs = pointers(gates);
  for (const PreparedGate* g : ptrs) {
    apply_gate_scalar(oracle.data(), n, *g);
  }
  EXPECT_LT(blocked.max_abs_diff(oracle), 1e-4);
}

TEST(Fp32BlockApply, EligibilityUsesWidenedSpan) {
  const PreparedGateF diag = prepare_gate_f32(gates::cz(), {2, 9});
  EXPECT_TRUE(block_run_eligible_f32(diag, 2));
  const PreparedGateF h9 = prepare_gate_f32(gates::h(), {9});
  EXPECT_FALSE(block_run_eligible_f32(h9, 4));
  const PreparedGateF h0 = prepare_gate_f32(gates::h(), {0});
  if (h0.widened) {
    // Spectators sit on the lowest free locations, so the widened span
    // stays within [0, widened->k).
    EXPECT_EQ(h0.widened->qubits.back(), h0.widened->k - 1);
    EXPECT_TRUE(block_run_eligible_f32(h0, h0.widened->k));
  }
  EXPECT_TRUE(block_run_eligible_f32(h0, 4));
}

}  // namespace
}  // namespace quasar
