#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "runtime/baseline.hpp"
#include "runtime/distributed.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

Circuit supremacy_like(int rows, int cols, int depth, std::uint64_t seed) {
  SupremacyOptions o;
  o.rows = rows;
  o.cols = cols;
  o.depth = depth;
  o.seed = seed;
  return make_supremacy_circuit(o);
}

TEST(Baseline, MatchesReferenceOnSupremacyCircuit) {
  const Circuit c = supremacy_like(3, 3, 14, 1);
  StateVector expected(9);
  reference_run(expected, c);

  for (auto mode : {SpecializationMode::kWorstCase,
                    SpecializationMode::kFull}) {
    BaselineOptions o;
    o.specialization = mode;
    BaselineSimulator sim(9, 6, o);
    sim.init_basis(0);
    sim.run(c);
    EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-11)
        << "mode " << static_cast<int>(mode);
    EXPECT_NEAR(sim.norm_squared(), 1.0, 1e-11);
  }
}

TEST(Baseline, AgreesWithDistributedSimulator) {
  const Circuit c = supremacy_like(2, 4, 16, 3);
  BaselineSimulator base(8, 5);
  base.init_uniform();
  // Baseline needs the H layer even from uniform init; rebuild without
  // initial Hadamards to compare like-for-like.
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 4;
  so.depth = 16;
  so.seed = 3;
  so.initial_hadamards = false;
  const Circuit stripped = make_supremacy_circuit(so);
  base.run(stripped);

  ScheduleOptions sched;
  sched.num_local = 5;
  sched.kmax = 4;
  DistributedSimulator ours(8, 5);
  ours.init_uniform();
  ours.run(stripped, make_schedule(stripped, sched));

  EXPECT_LT(ours.gather().max_abs_diff(base.gather()), 1e-10);
}

TEST(Baseline, CommunicatesPerDenseGlobalGate) {
  // Every dense single-qubit gate on a global qubit costs 2 pairwise
  // exchanges; our scheme's swap count must be far below that.
  const Circuit c = supremacy_like(3, 3, 25, 5);
  const int l = 6;

  BaselineOptions bo;
  bo.specialization = SpecializationMode::kWorstCase;
  BaselineSimulator base(9, l, bo);
  base.init_basis(0);
  base.run(c);
  const int expected_comm_gates =
      count_global_gates(c, l, SpecializationMode::kWorstCase);
  EXPECT_EQ(base.stats().pairwise_exchanges,
            static_cast<std::uint64_t>(2 * expected_comm_gates));

  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 4;
  DistributedSimulator ours(9, l);
  ours.init_basis(0);
  ours.run(c, make_schedule(c, sched));
  EXPECT_LT(ours.stats().alltoalls,
            static_cast<std::uint64_t>(expected_comm_gates));
}

TEST(Baseline, FullSpecializationCommunicatesLess) {
  const Circuit c = supremacy_like(3, 3, 20, 7);
  BaselineOptions worst, median;
  worst.specialization = SpecializationMode::kWorstCase;
  median.specialization = SpecializationMode::kFull;

  BaselineSimulator a(9, 6, worst), b(9, 6, median);
  a.init_basis(0);
  b.init_basis(0);
  a.run(c);
  b.run(c);
  EXPECT_GT(a.stats().pairwise_exchanges, b.stats().pairwise_exchanges);
  // Both still compute the same state.
  EXPECT_LT(a.gather().max_abs_diff(b.gather()), 1e-11);
}

TEST(Baseline, RandomCircuitWithCnotControlOnGlobal) {
  Rng rng(11);
  Circuit c(7);
  c.h(0);
  c.h(6);
  c.cnot(6, 0);  // global control, local target: conditional X
  c.cz(5, 6);    // both global: conditional phase
  c.t(6);        // diagonal on global
  c.append_custom({2}, gates::random_su2(rng));

  StateVector expected(7);
  reference_run(expected, c);

  BaselineOptions o;
  o.specialization = SpecializationMode::kFull;
  BaselineSimulator sim(7, 4, o);
  sim.init_basis(0);
  sim.run(c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-12);
}

TEST(Baseline, UnsupportedDenseTwoQubitGlobalThrows) {
  Rng rng(12);
  Circuit c(6);
  // A dense 2-qubit gate with a global qubit is outside the [19] scheme
  // as implemented here.
  GateMatrix dense = gates::cnot() * (gates::h().embed(2, {0}));
  c.append_custom({0, 5}, dense);
  BaselineSimulator sim(6, 4);
  sim.init_basis(0);
  EXPECT_THROW(sim.run(c), Error);
}

TEST(Baseline, Validation) {
  BaselineSimulator sim(6, 4);
  Circuit wrong(5);
  wrong.h(0);
  EXPECT_THROW(sim.run(wrong), Error);
}

}  // namespace
}  // namespace quasar
