#include <gtest/gtest.h>

#include <cmath>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

TEST(Measure, ProbabilityOfOneOnBasisStates) {
  StateVector s(4);
  s.set_basis_state(0b1010);
  EXPECT_NEAR(probability_of_one(s, 0), 0.0, 1e-15);
  EXPECT_NEAR(probability_of_one(s, 1), 1.0, 1e-15);
  EXPECT_NEAR(probability_of_one(s, 2), 0.0, 1e-15);
  EXPECT_NEAR(probability_of_one(s, 3), 1.0, 1e-15);
  EXPECT_THROW(probability_of_one(s, 4), Error);
}

TEST(Measure, ProbabilityOfOneOnSuperposition) {
  StateVector s(3);
  s.set_uniform_superposition();
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(probability_of_one(s, q), 0.5, 1e-12);
  }
}

TEST(Measure, EntropyOfBasisStateIsZero) {
  StateVector s(6);
  s.set_basis_state(13);
  EXPECT_NEAR(entropy(s), 0.0, 1e-12);
}

TEST(Measure, EntropyOfUniformIsNLog2) {
  StateVector s(7);
  s.set_uniform_superposition();
  EXPECT_NEAR(entropy(s), 7 * std::log(2.0), 1e-10);
}

TEST(Measure, PorterThomasEntropyValue) {
  // ln(2^n) - 1 + gamma.
  EXPECT_NEAR(porter_thomas_entropy(36),
              36 * std::log(2.0) - 1.0 + 0.57721566490153286, 1e-12);
  // Always below the uniform maximum.
  EXPECT_LT(porter_thomas_entropy(20), 20 * std::log(2.0));
}

TEST(Measure, SupremacyCircuitEntropyApproachesPorterThomas) {
  // A depth-20 4x3 supremacy circuit should produce an output
  // distribution whose entropy is near the Porter–Thomas value — this is
  // the validation signal the paper computes for its 36-qubit run.
  SupremacyOptions o;
  o.rows = 4;
  o.cols = 3;
  o.depth = 24;
  o.seed = 11;
  const Circuit c = make_supremacy_circuit(o);
  StateVector s(12);
  Simulator sim(s);
  sim.run(c);
  const Real measured = entropy(s);
  const Real expected = porter_thomas_entropy(12);
  EXPECT_NEAR(measured, expected, 0.12 * expected);
  // And clearly below the uniform bound.
  EXPECT_LT(measured, 12 * std::log(2.0));
}

TEST(Measure, SampleFromBasisState) {
  StateVector s(5);
  s.set_basis_state(21);
  Rng rng(1);
  const auto samples = sample_outcomes(s, 50, rng);
  ASSERT_EQ(samples.size(), 50u);
  for (Index x : samples) EXPECT_EQ(x, 21u);
}

TEST(Measure, SampleDistributionRoughlyCorrect) {
  // |+>|0>: outcomes 0 and 1 with p = 1/2 each.
  StateVector s(2);
  Simulator sim(s);
  Circuit c(2);
  c.h(0);
  sim.run(c);
  Rng rng(3);
  const auto samples = sample_outcomes(s, 4000, rng);
  int ones = 0;
  for (Index x : samples) {
    EXPECT_LT(x, 2u);
    ones += x == 1;
  }
  EXPECT_NEAR(ones / 4000.0, 0.5, 0.05);
}

TEST(Measure, SampleCountZero) {
  StateVector s(3);
  Rng rng(4);
  EXPECT_TRUE(sample_outcomes(s, 0, rng).empty());
}

TEST(Measure, MeasureQubitCollapses) {
  StateVector s(3);
  Simulator sim(s);
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  sim.run(c);  // (|00> + |11>)/sqrt(2) on qubits 0,1
  Rng rng(5);
  const int outcome = measure_qubit(s, 0, rng);
  // After measuring qubit 0, qubit 1 must agree with it.
  EXPECT_NEAR(probability_of_one(s, 1), static_cast<Real>(outcome), 1e-12);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
}

TEST(Measure, MeasureQubitDeterministicOnBasisState) {
  StateVector s(4);
  s.set_basis_state(0b0100);
  Rng rng(6);
  EXPECT_EQ(measure_qubit(s, 2, rng), 1);
  EXPECT_EQ(measure_qubit(s, 0, rng), 0);
}

TEST(Measure, PorterThomasTestStatistic) {
  // Uniform state: every outcome has p = 2^-n, so N*p = 1 exactly.
  StateVector s(8);
  s.set_uniform_superposition();
  Rng rng(7);
  const auto samples = sample_outcomes(s, 100, rng);
  EXPECT_NEAR(porter_thomas_test(s, samples), 1.0, 1e-9);
  EXPECT_THROW(porter_thomas_test(s, {}), Error);
}

TEST(Measure, PorterThomasTestNearTwoForSupremacyState) {
  SupremacyOptions o;
  o.rows = 3;
  o.cols = 4;
  o.depth = 24;
  o.seed = 3;
  StateVector s(12);
  Simulator sim(s);
  sim.run(make_supremacy_circuit(o));
  Rng rng(8);
  const auto samples = sample_outcomes(s, 3000, rng);
  // Ideal sampler from a Porter–Thomas distribution: E[N p] = 2.
  EXPECT_NEAR(porter_thomas_test(s, samples), 2.0, 0.25);
}

}  // namespace
}  // namespace quasar
