#include <gtest/gtest.h>

#include <omp.h>

#include <cstdint>

#include "circuit/supremacy.hpp"
#include "runtime/distributed.hpp"
#include "runtime/rank_storage.hpp"
#include "simulator/reference.hpp"

namespace quasar {
namespace {

TEST(RankStorage, MemoryModeBasics) {
  RankStorage s(64, StorageOptions{});
  ASSERT_NE(s.data(), nullptr);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_FALSE(s.on_disk());
  for (Index i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.data()[i], Amplitude{0.0});
  }
  s.data()[3] = Amplitude{1.0, 2.0};
  RankStorage moved = std::move(s);
  EXPECT_EQ(moved.data()[3], (Amplitude{1.0, 2.0}));
  EXPECT_EQ(s.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(RankStorage, DiskModeBasics) {
  StorageOptions options;
  options.medium = StorageMedium::kDisk;
  RankStorage s(256, options);
  ASSERT_NE(s.data(), nullptr);
  EXPECT_TRUE(s.on_disk());
  // ftruncate zero-fills.
  for (Index i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.data()[i], Amplitude{0.0});
  }
  // Page-aligned => SIMD-aligned.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % kSimdAlignment, 0u);
  s.data()[100] = Amplitude{3.0, -1.0};
  RankStorage moved = std::move(s);
  EXPECT_TRUE(moved.on_disk());
  EXPECT_EQ(moved.data()[100], (Amplitude{3.0, -1.0}));
}

TEST(RankStorage, DiskModeBadDirectoryThrows) {
  StorageOptions options;
  options.medium = StorageMedium::kDisk;
  options.directory = "/nonexistent/definitely/missing";
  EXPECT_THROW(RankStorage(16, options), Error);
}

TEST(RankStorage, ZeroCountThrowsOnEveryMedium) {
  for (StorageMedium medium : {StorageMedium::kMemory, StorageMedium::kDisk,
                               StorageMedium::kOocore}) {
    StorageOptions options;
    options.medium = medium;
    options.segment_bytes = 256;
    EXPECT_THROW(RankStorage(0, options), Error)
        << "medium " << static_cast<int>(medium);
  }
}

TEST(RankStorage, MoveAssignReleasesTheLiveDiskMapping) {
  StorageOptions options;
  options.medium = StorageMedium::kDisk;
  RankStorage a(128, options);
  a.data()[7] = Amplitude{1.5, -2.5};
  RankStorage b(256, options);
  b.data()[0] = Amplitude{9.0, 9.0};
  // Move-assign over b's live mmap: the old mapping must be unmapped
  // (its file is unlinked, so a leak here pins disk space for the whole
  // run) and a's mapping adopted intact.
  b = std::move(a);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_TRUE(b.on_disk());
  EXPECT_EQ(b.data()[7], (Amplitude{1.5, -2.5}));
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from must read empty.
  EXPECT_FALSE(a.on_disk());
}

TEST(RankStorage, SegmentedSliceSurvivesAMoveChain) {
  StorageOptions options;
  options.medium = StorageMedium::kOocore;
  options.codec = oocore::Codec::kLz;
  options.segment_bytes = 256;
  RankStorage a(64, options);
  a.data()[33] = Amplitude{0.25, 0.75};  // materializes + marks dirty
  a.dematerialize();                     // re-encodes into the store
  EXPECT_FALSE(a.resident());

  RankStorage b = std::move(a);
  RankStorage c(16, StorageOptions{});
  c = std::move(b);
  EXPECT_TRUE(c.on_disk());
  EXPECT_TRUE(c.segmented());
  ASSERT_NE(c.store(), nullptr);
  EXPECT_EQ(c.data()[33], (Amplitude{0.25, 0.75}));
  // Both moved-from shells are disarmed: no store, nothing on disk.
  // NOLINTNEXTLINE(bugprone-use-after-move)
  EXPECT_FALSE(a.on_disk());
  EXPECT_FALSE(a.segmented());
  // NOLINTNEXTLINE(bugprone-use-after-move)
  EXPECT_FALSE(b.on_disk());
  EXPECT_FALSE(b.segmented());
}

TEST(DiskBackedCluster, FullRunMatchesMemoryCluster) {
  // The Sec. 5 outlook made concrete: an entire distributed supremacy
  // run with every rank slice living on disk, bit-identical to DRAM.
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 12;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 4;
  const Schedule schedule = make_schedule(c, o);

  StorageOptions disk;
  disk.medium = StorageMedium::kDisk;
  DistributedSimulator on_disk(9, 6, {}, disk);
  on_disk.init_basis(0);
  on_disk.run(c, schedule);

  DistributedSimulator in_memory(9, 6);
  in_memory.init_basis(0);
  in_memory.run(c, schedule);

  EXPECT_LT(on_disk.gather().max_abs_diff(in_memory.gather()), 1e-15);
  EXPECT_NEAR(on_disk.entropy(), in_memory.entropy(), 1e-12);
  EXPECT_EQ(on_disk.stats().alltoalls, in_memory.stats().alltoalls);
}

TEST(DiskBackedCluster, OneAmplitudeBounceFloorStaysExact) {
  // bounce_buffer_bytes below one amplitude per thread: the exchange
  // must clamp to the one-amplitude floor, not underflow to a zero-size
  // chunk, and the run stays bit-identical to the default budget.
  SupremacyOptions so;
  so.rows = 3;
  so.cols = 3;
  so.depth = 16;
  so.seed = 14;
  const Circuit c = make_supremacy_circuit(so);
  ScheduleOptions o;
  o.num_local = 6;
  o.kmax = 3;
  const Schedule schedule = make_schedule(c, o);

  StorageOptions tiny;
  tiny.bounce_buffer_bytes = 1;
  DistributedSimulator starved(9, 6, {}, tiny);
  starved.init_basis(0);
  starved.run(c, schedule);

  DistributedSimulator roomy(9, 6);
  roomy.init_basis(0);
  roomy.run(c, schedule);

  EXPECT_EQ(starved.gather().max_abs_diff(roomy.gather()), 0.0);
  if (starved.stats().alltoalls > 0) {
    // Peak bounce footprint is exactly the floor: one amplitude per
    // OpenMP thread.
    EXPECT_EQ(starved.stats().peak_bounce_bytes,
              static_cast<std::uint64_t>(omp_get_max_threads()) *
                  sizeof(Amplitude));
  }
}

TEST(DiskBackedCluster, MatchesReference) {
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 4;
  so.depth = 12;
  so.seed = 13;
  const Circuit c = make_supremacy_circuit(so);
  StateVector expected(8);
  reference_run(expected, c);

  StorageOptions disk;
  disk.medium = StorageMedium::kDisk;
  ScheduleOptions o;
  o.num_local = 5;
  o.kmax = 3;
  DistributedSimulator sim(8, 5, {}, disk);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-10);
}

}  // namespace
}  // namespace quasar
