#include <gtest/gtest.h>

#include <map>
#include <set>

#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "core/error.hpp"

namespace quasar {
namespace {

TEST(CzPatterns, NoQubitTwiceWithinOnePattern) {
  for (int rows : {4, 5, 6, 7}) {
    for (int cols : {4, 5, 6}) {
      for (int p = 0; p < 8; ++p) {
        std::set<Qubit> seen;
        for (const Bond& b : supremacy_cz_pattern(p, rows, cols)) {
          EXPECT_TRUE(seen.insert(b.a).second) << "pattern " << p;
          EXPECT_TRUE(seen.insert(b.b).second) << "pattern " << p;
        }
      }
    }
  }
}

TEST(CzPatterns, EightPatternsCoverEveryBondExactlyOnce) {
  // Fig. 1: "all possible two qubit interactions ... are executed every
  // 8 cycles".
  for (auto [rows, cols] : {std::pair{4, 4}, {6, 5}, {6, 6}, {7, 6}}) {
    std::map<std::pair<Qubit, Qubit>, int> hits;
    for (int p = 0; p < 8; ++p) {
      for (const Bond& b : supremacy_cz_pattern(p, rows, cols)) {
        auto key = std::minmax(b.a, b.b);
        ++hits[{key.first, key.second}];
      }
    }
    const std::size_t expected_bonds =
        static_cast<std::size_t>(rows * (cols - 1) + (rows - 1) * cols);
    EXPECT_EQ(hits.size(), expected_bonds) << rows << "x" << cols;
    for (const auto& [bond, count] : hits) EXPECT_EQ(count, 1);
  }
}

TEST(CzPatterns, BondsAreGridNeighbours) {
  const int rows = 5, cols = 6;
  for (int p = 0; p < 8; ++p) {
    for (const Bond& b : supremacy_cz_pattern(p, rows, cols)) {
      const int ra = b.a / cols, ca = b.a % cols;
      const int rb = b.b / cols, cb = b.b % cols;
      EXPECT_EQ(std::abs(ra - rb) + std::abs(ca - cb), 1);
    }
  }
}

TEST(CzPatterns, Validation) {
  EXPECT_THROW(supremacy_cz_pattern(8, 4, 4), Error);
  EXPECT_THROW(supremacy_cz_pattern(-1, 4, 4), Error);
}

SupremacyOptions small_options(std::uint64_t seed = 7) {
  SupremacyOptions o;
  o.rows = 4;
  o.cols = 4;
  o.depth = 20;
  o.seed = seed;
  return o;
}

TEST(SupremacyGenerator, StartsWithHadamardLayer) {
  const Circuit c = make_supremacy_circuit(small_options());
  for (int q = 0; q < 16; ++q) {
    EXPECT_EQ(c.op(q).kind, GateKind::kH);
    EXPECT_EQ(c.op(q).qubits[0], q);
    EXPECT_EQ(c.op(q).cycle, 0);
  }
}

TEST(SupremacyGenerator, NoInitialHadamardsOption) {
  SupremacyOptions o = small_options();
  o.initial_hadamards = false;
  const Circuit c = make_supremacy_circuit(o);
  EXPECT_NE(c.op(0).kind, GateKind::kH);
}

TEST(SupremacyGenerator, CzGatesFollowThePatternOfTheirCycle) {
  const SupremacyOptions o = small_options();
  const Circuit c = make_supremacy_circuit(o);
  for (const GateOp& op : c.ops()) {
    if (op.kind != GateKind::kCZ) continue;
    const auto bonds =
        supremacy_cz_pattern((op.cycle - 1) % 8, o.rows, o.cols);
    bool found = false;
    for (const Bond& b : bonds) {
      found |= (b.a == op.qubits[0] && b.b == op.qubits[1]);
    }
    EXPECT_TRUE(found) << "cycle " << op.cycle;
  }
}

TEST(SupremacyGenerator, SingleQubitGateRules) {
  const SupremacyOptions o = small_options(123);
  const Circuit c = make_supremacy_circuit(o);
  const int n = o.rows * o.cols;

  std::vector<GateKind> last_single(n, GateKind::kH);
  std::vector<int> singles(n, 0);
  std::vector<std::set<Qubit>> cz_in_cycle(o.depth + 1);
  for (const GateOp& op : c.ops()) {
    if (op.kind == GateKind::kCZ) {
      cz_in_cycle[op.cycle].insert(op.qubits[0]);
      cz_in_cycle[op.cycle].insert(op.qubits[1]);
    }
  }
  for (const GateOp& op : c.ops()) {
    if (op.arity() != 1 || op.cycle == 0) continue;
    const Qubit q = op.qubits[0];
    // Applied only to qubits with a CZ in the previous but not the
    // current cycle.
    EXPECT_TRUE(cz_in_cycle[op.cycle - 1].count(q)) << "cycle " << op.cycle;
    EXPECT_FALSE(cz_in_cycle[op.cycle].count(q)) << "cycle " << op.cycle;
    // Gate choice rules.
    EXPECT_TRUE(op.kind == GateKind::kT || op.kind == GateKind::kSqrtX ||
                op.kind == GateKind::kSqrtY);
    if (singles[q] == 0) {
      EXPECT_EQ(op.kind, GateKind::kT)
          << "second single-qubit gate (after H) must be T";
    } else {
      EXPECT_NE(op.kind, last_single[q])
          << "random gate must differ from the previous one";
    }
    last_single[q] = op.kind;
    ++singles[q];
  }
}

TEST(SupremacyGenerator, DeterministicInSeed) {
  const Circuit a = make_supremacy_circuit(small_options(5));
  const Circuit b = make_supremacy_circuit(small_options(5));
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t i = 0; i < a.num_gates(); ++i) {
    EXPECT_EQ(a.op(i).kind, b.op(i).kind);
    EXPECT_EQ(a.op(i).qubits, b.op(i).qubits);
  }
}

TEST(SupremacyGenerator, DifferentSeedsDiffer) {
  const Circuit a = make_supremacy_circuit(small_options(1));
  const Circuit b = make_supremacy_circuit(small_options(2));
  bool any_diff = a.num_gates() != b.num_gates();
  for (std::size_t i = 0; !any_diff && i < a.num_gates(); ++i) {
    any_diff = a.op(i).kind != b.op(i).kind;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SupremacyGenerator, GateCountsNearPaperTable1) {
  // Table 1: depth-25 circuits have 369/447/528/569 gates for
  // 30/36/42/45 qubits. Pattern ordering details shift counts slightly;
  // require agreement within 15%.
  const std::map<int, std::size_t> paper = {
      {30, 369}, {36, 447}, {42, 528}, {45, 569}};
  for (const auto& [qubits, expected] : paper) {
    const auto [rows, cols] = supremacy_grid_for_qubits(qubits);
    SupremacyOptions o;
    o.rows = rows;
    o.cols = cols;
    o.depth = 25;
    o.seed = 0;
    const Circuit c = make_supremacy_circuit(o);
    const double ratio = static_cast<double>(c.num_gates()) /
                         static_cast<double>(expected);
    EXPECT_GT(ratio, 0.85) << qubits << " qubits: " << c.num_gates();
    EXPECT_LT(ratio, 1.15) << qubits << " qubits: " << c.num_gates();
  }
}

TEST(SupremacyGenerator, GridForQubits) {
  EXPECT_EQ(supremacy_grid_for_qubits(30), (std::pair{6, 5}));
  EXPECT_EQ(supremacy_grid_for_qubits(45), (std::pair{9, 5}));
  EXPECT_EQ(supremacy_grid_for_qubits(49), (std::pair{7, 7}));
  EXPECT_THROW(supremacy_grid_for_qubits(31), Error);
}

TEST(SupremacyGenerator, Validation) {
  SupremacyOptions o;
  o.rows = 0;
  EXPECT_THROW(make_supremacy_circuit(o), Error);
  o = SupremacyOptions{};
  o.depth = 0;
  EXPECT_THROW(make_supremacy_circuit(o), Error);
  o = SupremacyOptions{};
  o.rows = 1;
  o.cols = 1;
  EXPECT_THROW(make_supremacy_circuit(o), Error);
}

TEST(SupremacyGenerator, DepthMatchesCycles) {
  const Circuit c = make_supremacy_circuit(small_options());
  int max_cycle = 0;
  for (const GateOp& op : c.ops()) max_cycle = std::max(max_cycle, op.cycle);
  EXPECT_EQ(max_cycle, 20);
}

}  // namespace
}  // namespace quasar
