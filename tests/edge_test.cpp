/// Boundary-condition tests: the smallest states, widest gates, trivial
/// circuits, and degenerate cluster configurations.
#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "runtime/distributed.hpp"
#include "sched/executor.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

TEST(Edge, OneQubitState) {
  StateVector s(1);
  Simulator sim(s);
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  sim.run(c);
  StateVector expected(1);
  reference_run(expected, c);
  EXPECT_LT(s.max_abs_diff(expected), 1e-14);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-14);
  EXPECT_NEAR(probability_of_one(s, 0) + s.probability(0), 1.0, 1e-12);
}

TEST(Edge, TwoQubitStateEveryGatePlacement) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    Circuit c(2);
    c.append_custom({0}, gates::random_su2(rng));
    c.append_custom({1}, gates::random_su2(rng));
    c.cz(0, 1);
    c.cnot(1, 0);
    c.swap(0, 1);
    StateVector fast(2), slow(2);
    Simulator sim(fast);
    sim.run(c);
    reference_run(slow, c);
    EXPECT_LT(fast.max_abs_diff(slow), 1e-13);
  }
}

TEST(Edge, GateOnAllQubits) {
  // k == n: a single matrix on the whole register (outer loop length 1).
  Rng rng(2);
  const int n = 5;
  GateMatrix u = GateMatrix::identity(n);
  for (int q = 0; q < n; ++q) {
    u = gates::random_su2(rng).embed(n, {q}) * u;
  }
  for (int q = 0; q + 1 < n; ++q) {
    u = gates::cz().embed(n, {q, q + 1}) * u;
  }
  StateVector fast(n), slow(n);
  fast.set_uniform_superposition();
  slow.set_uniform_superposition();
  Simulator sim(fast);
  sim.apply(u, {0, 1, 2, 3, 4});
  reference_apply(slow, u, {0, 1, 2, 3, 4});
  EXPECT_LT(fast.max_abs_diff(slow), 1e-12);
}

TEST(Edge, WideGateBeyondSpecializedRange) {
  // k = 7 routes to the scalar fallback via the dispatcher.
  Rng rng(3);
  const int n = 9, k = 7;
  GateMatrix u = GateMatrix::identity(k);
  for (int q = 0; q < k; ++q) {
    u = gates::random_su2(rng).embed(k, {q}) * u;
  }
  std::vector<int> locations = {0, 2, 3, 4, 6, 7, 8};
  StateVector fast(n), slow(n);
  fast.set_uniform_superposition();
  slow.set_uniform_superposition();
  Simulator sim(fast);
  sim.apply(u, locations);
  reference_apply(slow, u, locations);
  EXPECT_LT(fast.max_abs_diff(slow), 1e-12);
}

TEST(Edge, SingleGateCircuitSchedules) {
  Circuit c(6);
  c.h(5);
  ScheduleOptions o;
  o.num_local = 3;
  o.kmax = 2;
  const Schedule s = make_schedule(c, o);
  EXPECT_EQ(s.num_gates(), 1u);
  DistributedSimulator sim(6, 3);
  sim.init_basis(0);
  sim.run(c, s);
  StateVector expected(6);
  reference_run(expected, c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-13);
}

TEST(Edge, AllDiagonalCircuitNeedsNoSwaps) {
  // Only diagonal gates: everything specializes, zero communication,
  // even though the gates touch global qubits.
  Circuit c(6);
  c.t(5);
  c.cz(4, 5);
  c.cz(0, 5);
  c.rz(4, 0.3);
  c.cphase(3, 5, 0.7);
  ScheduleOptions o;
  o.num_local = 3;
  o.kmax = 2;
  o.specialization = SpecializationMode::kFull;
  const Schedule s = make_schedule(c, o);
  EXPECT_EQ(s.num_swaps(), 0);

  DistributedSimulator sim(6, 3);
  sim.init_uniform();
  sim.run(c, s);
  EXPECT_EQ(sim.stats().alltoalls, 0u);
  StateVector expected(6);
  expected.set_uniform_superposition();
  reference_run(expected, c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-13);
}

TEST(Edge, SupremacyDepthOne) {
  SupremacyOptions o;
  o.rows = 3;
  o.cols = 3;
  o.depth = 1;
  const Circuit c = make_supremacy_circuit(o);
  // Cycle 0 Hadamards + the first CZ pattern, no single-qubit gates yet.
  for (const GateOp& op : c.ops()) {
    EXPECT_TRUE(op.kind == GateKind::kH || op.kind == GateKind::kCZ);
  }
  StateVector fast(9), slow(9);
  Simulator sim(fast);
  sim.run(c);
  reference_run(slow, c);
  EXPECT_LT(fast.max_abs_diff(slow), 1e-13);
}

TEST(Edge, FusedRunOnTinyCircuit) {
  Circuit c(3);
  c.h(0);
  StateVector s(3), expected(3);
  run_fused(s, c);
  reference_run(expected, c);
  EXPECT_LT(s.max_abs_diff(expected), 1e-14);
}

TEST(Edge, MinimumLocalQubits) {
  // l = g (the tightest legal split): every swap exchanges everything.
  Circuit c(6);
  for (Qubit q = 0; q < 6; ++q) c.h(q);
  c.cz(0, 3);
  for (Qubit q = 0; q < 6; ++q) c.sqrt_x(q);
  ScheduleOptions o;
  o.num_local = 3;
  o.kmax = 3;
  DistributedSimulator sim(6, 3);
  sim.init_basis(0);
  sim.run(c, make_schedule(c, o));
  StateVector expected(6);
  reference_run(expected, c);
  EXPECT_LT(sim.gather().max_abs_diff(expected), 1e-12);
}

TEST(Edge, RepeatedGatesOnOneQubit) {
  // Exercises per-qubit ordering through clustering: 40 consecutive
  // dense gates on a single qubit must compose in exact order.
  Rng rng(8);
  Circuit c(4);
  for (int i = 0; i < 40; ++i) {
    c.append_custom({1}, gates::random_su2(rng));
  }
  StateVector fused(4), expected(4);
  fused.set_uniform_superposition();
  expected.set_uniform_superposition();
  run_fused(fused, c);
  reference_run(expected, c);
  EXPECT_LT(fused.max_abs_diff(expected), 1e-10);
}

}  // namespace
}  // namespace quasar
