/// \file obs_test.cpp
/// \brief Tracing/metrics layer: span nesting, counter thread-safety,
/// exporter validity, distributed-run coverage, and the measured-vs-
/// predicted report.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string_view>
#include <vector>

#include "circuit/supremacy.hpp"
#include "core/timing.hpp"
#include "fp32/distributed_f32.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "oocore/codec.hpp"
#include "runtime/comm.hpp"
#include "runtime/distributed.hpp"
#include "sched/schedule.hpp"

namespace quasar {
namespace {

/// Installs `session` globally for the enclosing scope.
class SessionGuard {
 public:
  explicit SessionGuard(obs::TraceSession& session) {
    obs::set_global_session(&session);
  }
  ~SessionGuard() { obs::set_global_session(nullptr); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceSession, RecordsNestedSpansWithDepthAndContainment) {
  obs::TraceSession session;
  SessionGuard guard(session);
  {
    obs::ScopedSpan outer("run", "outer");
    {
      obs::ScopedSpan inner("stage", "inner", "stage", 7);
      QUASAR_OBS_SPAN("gate_run", "leaf");
    }
    QUASAR_OBS_SPAN("exchange", "sibling");
  }
  const std::vector<obs::SpanEvent> spans = session.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Sorted by begin time, outer-first on ties.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[1].arg_name, "stage");
  EXPECT_EQ(spans[1].arg_value, 7);
  EXPECT_STREQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_STREQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].depth, 1);
  for (const obs::SpanEvent& s : spans) {
    EXPECT_LE(s.begin_ns, s.end_ns);
    EXPECT_GE(s.begin_ns, spans[0].begin_ns);
    EXPECT_LE(s.end_ns, spans[0].end_ns);
    EXPECT_EQ(s.thread, 0);
  }
  EXPECT_EQ(session.num_threads(), 1);
}

TEST(TraceSession, DisabledSitesAreNoOps) {
  ASSERT_FALSE(obs::enabled());
  {
    QUASAR_OBS_SPAN("run", "nobody_listens");
    obs::count("comm.alltoalls");
    obs::count_peak("comm.peak_bounce_bytes", 123);
  }
  obs::TraceSession session;
  EXPECT_TRUE(session.spans().empty());
  EXPECT_TRUE(session.counters().empty());
}

TEST(TraceSession, SpanCapturesSessionAtConstruction) {
  // A span that opens while a session is installed must close into that
  // session even if tracing is disabled in between.
  obs::TraceSession session;
  obs::set_global_session(&session);
  {
    obs::ScopedSpan span("run", "straddler");
    obs::set_global_session(nullptr);
  }
  ASSERT_EQ(session.spans().size(), 1u);
  EXPECT_STREQ(session.spans()[0].name, "straddler");
}

TEST(TraceSession, CountersAggregateUnderOpenMP) {
  obs::TraceSession session;
  SessionGuard guard(session);
  constexpr int kIters = 20000;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < kIters; ++i) {
    obs::count("test.adds", 2);
    obs::count_peak("test.peak", static_cast<std::uint64_t>(i));
  }
  const std::vector<obs::CounterValue> counters = session.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "test.adds");
  EXPECT_EQ(counters[0].value, static_cast<std::uint64_t>(kIters) * 2);
  EXPECT_FALSE(counters[0].is_peak);
  EXPECT_EQ(counters[1].name, "test.peak");
  EXPECT_EQ(counters[1].value, static_cast<std::uint64_t>(kIters - 1));
  EXPECT_TRUE(counters[1].is_peak);
}

TEST(TraceSession, ThreadsGetDistinctBuffers) {
  obs::TraceSession session;
  SessionGuard guard(session);
  const int threads = std::min(4, omp_get_max_threads());
#pragma omp parallel num_threads(threads)
  {
    QUASAR_OBS_SPAN("gate_run", "per_thread");
  }
  const std::vector<obs::SpanEvent> spans = session.spans();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(threads));
  std::vector<int> seen;
  for (const obs::SpanEvent& s : spans) {
    EXPECT_EQ(s.depth, 0);
    seen.push_back(s.thread);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(session.num_threads(), threads);
}

TEST(TraceExport, ChromeTraceIsValidJsonWithExpectedShape) {
  obs::TraceSession session;
  {
    SessionGuard guard(session);
    obs::ScopedSpan span("stage", "stage", "stage", 3);
    obs::count("comm.alltoalls", 5);
  }
  const std::string json = obs::chrome_trace_json(session);
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"comm.alltoalls\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceExport, MetricsJsonIsValidAndCarriesCountersAndSpans) {
  obs::TraceSession session;
  {
    SessionGuard guard(session);
    QUASAR_OBS_SPAN("exchange", "alltoall");
    obs::count("comm.bytes_sent_per_rank", 4096);
  }
  const std::string json = obs::metrics_json(session);
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"comm.bytes_sent_per_rank\": 4096"),
            std::string::npos);
  EXPECT_NE(json.find("\"exchange\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TraceExport, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(obs::validate_json("{}"));
  EXPECT_TRUE(obs::validate_json("[1, 2.5e3, \"a\\n\", true, null]"));
  EXPECT_FALSE(obs::validate_json(""));
  EXPECT_FALSE(obs::validate_json("{"));
  EXPECT_FALSE(obs::validate_json("{\"a\": }"));
  EXPECT_FALSE(obs::validate_json("[1,]"));
  EXPECT_FALSE(obs::validate_json("{} trailing"));
  EXPECT_FALSE(obs::validate_json("\"unterminated"));
  EXPECT_FALSE(obs::validate_json("01"));
  std::string error;
  EXPECT_FALSE(obs::validate_json("nulL", &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceExport, EnvTraceGuardWritesFilesOnDestruction) {
  const std::string trace_path =
      testing::TempDir() + "quasar_obs_test_trace.json";
  const std::string metrics_path =
      testing::TempDir() + "quasar_obs_test_metrics.json";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  ASSERT_EQ(setenv("QUASAR_TRACE", trace_path.c_str(), 1), 0);
  ASSERT_EQ(setenv("QUASAR_TRACE_METRICS", metrics_path.c_str(), 1), 0);
  {
    obs::EnvTraceGuard guard;
    ASSERT_TRUE(guard.active());
    EXPECT_TRUE(obs::enabled());
    QUASAR_OBS_SPAN("run", "guarded");
    obs::count("test.guarded");
  }
  EXPECT_FALSE(obs::enabled());
  unsetenv("QUASAR_TRACE");
  unsetenv("QUASAR_TRACE_METRICS");
  const std::string trace = read_file(trace_path);
  const std::string metrics = read_file(metrics_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(metrics.empty());
  std::string error;
  EXPECT_TRUE(obs::validate_json(trace, &error)) << error;
  EXPECT_TRUE(obs::validate_json(metrics, &error)) << error;
  EXPECT_NE(trace.find("\"guarded\""), std::string::npos);
  EXPECT_NE(metrics.find("\"test.guarded\": 1"), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

/// Expected all-to-alls: transitions whose mapping change moves at least
/// one qubit across the local/global boundary.
int expected_exchanges(const Schedule& schedule) {
  const int l = schedule.num_local;
  std::vector<int> prev(schedule.num_qubits);
  std::iota(prev.begin(), prev.end(), 0);
  int exchanges = 0;
  for (const Stage& stage : schedule.stages) {
    bool crossing = false;
    for (int q = 0; q < schedule.num_qubits; ++q) {
      crossing |= (prev[q] >= l) != (stage.qubit_to_location[q] >= l);
    }
    exchanges += crossing;
    prev = stage.qubit_to_location;
  }
  return exchanges;
}

TEST(TraceDistributed, OneExchangeSpanPerTransition) {
  SupremacyOptions options;
  options.rows = 4;
  options.cols = 4;
  options.depth = 20;
  options.seed = 11;
  const Circuit circuit = make_supremacy_circuit(options);
  const int n = 16, l = 12;
  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 4;
  const Schedule schedule = make_schedule(circuit, sched);
  ASSERT_GT(expected_exchanges(schedule), 0);

  obs::TraceSession session;
  DistributedSimulator sim(n, l);
  {
    SessionGuard guard(session);
    sim.init_basis(0);
    sim.run(circuit, schedule);
  }

  int exchange_spans = 0, stage_spans = 0, run_spans = 0;
  for (const obs::SpanEvent& s : session.spans()) {
    if (std::string_view(s.category) == "exchange") ++exchange_spans;
    if (std::string_view(s.category) == "stage") ++stage_spans;
    if (std::string_view(s.category) == "run") ++run_spans;
  }
  EXPECT_EQ(run_spans, 1);
  EXPECT_EQ(stage_spans, static_cast<int>(schedule.stages.size()));
  EXPECT_EQ(exchange_spans, expected_exchanges(schedule));
  EXPECT_EQ(exchange_spans, static_cast<int>(sim.stats().alltoalls));

  // The registry view must agree with the CommStats tallies.
  for (const obs::CounterValue& c : session.counters()) {
    if (c.name == "comm.alltoalls") {
      EXPECT_EQ(c.value, sim.stats().alltoalls);
    }
    if (c.name == "comm.bytes_sent_per_rank") {
      EXPECT_EQ(c.value, sim.stats().bytes_sent_per_rank);
    }
    if (c.name == "comm.local_permutation_sweeps") {
      EXPECT_EQ(c.value, sim.stats().local_permutation_sweeps);
    }
    if (c.name == "comm.peak_bounce_bytes") {
      EXPECT_EQ(c.value, sim.stats().peak_bounce_bytes);
    }
  }
}

TEST(TraceDistributed, ReportJoinsMeasuredAgainstPredicted) {
  SupremacyOptions options;
  options.rows = 4;
  options.cols = 4;
  options.depth = 15;
  options.seed = 5;
  const Circuit circuit = make_supremacy_circuit(options);
  ScheduleOptions sched;
  sched.num_local = 12;
  sched.kmax = 4;
  const Schedule schedule = make_schedule(circuit, sched);

  obs::TraceSession session;
  {
    SessionGuard guard(session);
    DistributedSimulator sim(16, 12);
    sim.init_basis(0);
    sim.run(circuit, schedule);
  }

  const std::vector<obs::StageBreakdown> measured =
      obs::measured_stages(session);
  ASSERT_EQ(measured.size(), schedule.stages.size());
  for (const obs::StageBreakdown& b : measured) {
    EXPECT_GT(b.total_seconds, 0.0);
    EXPECT_LE(b.gate_seconds + b.exchange_seconds + b.permute_seconds +
                  b.renumber_seconds + b.measure_seconds,
              b.total_seconds + 1e-9);
  }

  const std::vector<obs::StagePrediction> predicted = obs::predict_stages(
      circuit, schedule, host_machine(), aries_dragonfly());
  ASSERT_EQ(predicted.size(), schedule.stages.size());
  double predicted_gate = 0.0;
  for (const obs::StagePrediction& p : predicted) {
    predicted_gate += p.gate_seconds;
  }
  EXPECT_GT(predicted_gate, 0.0);

  const std::string report =
      obs::run_report(session, circuit, schedule, host_machine(),
                      aries_dragonfly());
  EXPECT_NE(report.find("measured vs predicted"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
  EXPECT_NE(report.find("meas/pred"), std::string::npos);
}

TEST(TraceDistributed, OocoreRunFeedsReportAndOverlapModel) {
  SupremacyOptions options;
  options.rows = 3;
  options.cols = 3;
  options.depth = 14;
  options.seed = 11;
  const Circuit circuit = make_supremacy_circuit(options);
  ScheduleOptions sched;
  sched.num_local = 6;
  sched.kmax = 3;
  const Schedule schedule = make_schedule(circuit, sched);

  StorageOptions storage;
  storage.medium = StorageMedium::kOocore;
  storage.codec = oocore::Codec::kLz;
  storage.segment_bytes = 1024;

  obs::TraceSession session;
  {
    SessionGuard guard(session);
    DistributedSimulator sim(9, 6, {}, storage);
    sim.init_basis(0);
    sim.run(circuit, schedule);
  }

  // Stage time spent in the pipelined executor lands in the "oocore"
  // bucket and stays covered (no unexplained stage time from it).
  const std::vector<obs::StageBreakdown> measured =
      obs::measured_stages(session);
  ASSERT_EQ(measured.size(), schedule.stages.size());
  double oocore_total = 0.0;
  for (const obs::StageBreakdown& b : measured) {
    oocore_total += b.oocore_seconds;
    EXPECT_LE(b.oocore_seconds, b.total_seconds + 1e-9);
  }
  EXPECT_GT(oocore_total, 0.0);

  // The sweep counters drive the out-of-core summary block, standalone
  // and appended to the full report.
  const std::string block = obs::oocore_report(session, OocoreModel{});
  EXPECT_NE(block.find("out-of-core:"), std::string::npos);
  EXPECT_NE(block.find("ratio"), std::string::npos);
  EXPECT_NE(block.find("max(compute"), std::string::npos);

  const std::string report =
      obs::run_report(session, circuit, schedule, host_machine(),
                      aries_dragonfly());
  EXPECT_NE(report.find("out-of-core:"), std::string::npos);

  // A session with no oocore sweeps reports nothing.
  obs::TraceSession empty;
  EXPECT_EQ(obs::oocore_report(empty, OocoreModel{}), "");
}

TEST(TraceDistributed, Fp32MirrorEmitsSpansAndTracksPermutePeak) {
  SupremacyOptions options;
  options.rows = 4;
  options.cols = 3;
  options.depth = 16;
  options.seed = 9;
  const Circuit circuit = make_supremacy_circuit(options);
  const int n = 12, l = 9;
  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 3;
  const Schedule schedule = make_schedule(circuit, sched);

  obs::TraceSession session;
  DistributedSimulatorF sim(n, l);
  {
    SessionGuard guard(session);
    sim.init_basis(0);
    sim.run(circuit, schedule);
  }

  int exchange_spans = 0, stage_spans = 0, permute_spans = 0;
  for (const obs::SpanEvent& s : session.spans()) {
    if (std::string_view(s.category) == "exchange") ++exchange_spans;
    if (std::string_view(s.category) == "stage") ++stage_spans;
    if (std::string_view(s.category) == "permute") ++permute_spans;
  }
  EXPECT_EQ(stage_spans, static_cast<int>(schedule.stages.size()));
  EXPECT_EQ(exchange_spans, static_cast<int>(sim.stats().alltoalls));
  EXPECT_EQ(permute_spans,
            static_cast<int>(sim.stats().local_permutation_sweeps));

  // The fp32 permutation sweep must feed the peak-bounce accounting
  // (it used to be dropped — only the all-to-all updated the peak).
  if (sim.stats().local_permutation_sweeps > 0) {
    EXPECT_GT(sim.stats().peak_bounce_bytes, 0u);
  }
  for (const obs::CounterValue& c : session.counters()) {
    if (c.name == "comm.peak_bounce_bytes") {
      EXPECT_EQ(c.value, sim.stats().peak_bounce_bytes);
      EXPECT_TRUE(c.is_peak);
    }
    if (c.name == "comm.alltoalls") {
      EXPECT_EQ(c.value, sim.stats().alltoalls);
    }
  }
}

TEST(CommStatsAggregation, OperatorPlusEqualsSumsAndMaxesPeak) {
  CommStats a;
  a.alltoalls = 3;
  a.pairwise_exchanges = 1;
  a.bytes_sent_per_rank = 100;
  a.local_swap_sweeps = 2;
  a.local_permutation_sweeps = 4;
  a.local_permutation_bytes = 1000;
  a.peak_bounce_bytes = 512;
  a.rank_renumberings = 5;
  CommStats b;
  b.alltoalls = 7;
  b.pairwise_exchanges = 2;
  b.bytes_sent_per_rank = 50;
  b.local_swap_sweeps = 1;
  b.local_permutation_sweeps = 6;
  b.local_permutation_bytes = 500;
  b.peak_bounce_bytes = 256;  // smaller: must NOT shrink the peak
  b.rank_renumberings = 1;
  a += b;
  EXPECT_EQ(a.alltoalls, 10u);
  EXPECT_EQ(a.pairwise_exchanges, 3u);
  EXPECT_EQ(a.bytes_sent_per_rank, 150u);
  EXPECT_EQ(a.local_swap_sweeps, 3u);
  EXPECT_EQ(a.local_permutation_sweeps, 10u);
  EXPECT_EQ(a.local_permutation_bytes, 1500u);
  EXPECT_EQ(a.peak_bounce_bytes, 512u);  // max, not sum
  EXPECT_EQ(a.rank_renumberings, 6u);
  CommStats c;
  c.peak_bounce_bytes = 2048;
  a += c;
  EXPECT_EQ(a.peak_bounce_bytes, 2048u);  // larger peak wins
}

TEST(TimingStats, FixedRepVariantReportsBestMeanStddev) {
  int calls = 0;
  const TimingStats one = time_stats_n([&] { ++calls; }, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(one.reps, 1);
  EXPECT_DOUBLE_EQ(one.best, one.mean);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);

  calls = 0;
  const TimingStats many = time_stats_n([&] { ++calls; }, 8);
  EXPECT_EQ(calls, 8);
  EXPECT_EQ(many.reps, 8);
  EXPECT_GE(many.mean, many.best);
  EXPECT_GE(many.stddev, 0.0);

  const TimingStats timed = time_stats([] {}, 0.001);
  EXPECT_GE(timed.reps, 1);
  EXPECT_GE(timed.mean, timed.best);
}

}  // namespace
}  // namespace quasar
