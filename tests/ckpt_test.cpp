/// Checkpoint/restart subsystem tests (DESIGN.md §10): CRC32C known
/// answers, manifest round trip and torn-write detection, fault-spec
/// parsing, writer generation/prune protocol, reader fallback, and the
/// end-to-end recovery properties the subsystem exists for — a run
/// killed at a stage boundary, or whose newest snapshot is corrupted or
/// torn, resumes to a final state bit-identical to an uninterrupted run
/// (fp64 and fp32 engines, samples included).
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "circuit/supremacy.hpp"
#include "ckpt/crc32c.hpp"
#include "ckpt/fault.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "fp32/distributed_f32.hpp"
#include "runtime/distributed.hpp"
#include "sched/schedule.hpp"

namespace quasar {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test checkpoint directory under gtest's temp dir.
std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("quasar_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------- crc32c

TEST(Crc32c, KnownAnswer) {
  // The CRC32C check value from RFC 3720 / the Castagnoli literature.
  EXPECT_EQ(ckpt::crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(ckpt::crc32c("", 0), 0u);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cover "
      "the slicing body and the unaligned head and tail paths.";
  const std::uint32_t whole = ckpt::crc32c(data.data(), data.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{8}, std::size_t{63}, data.size()}) {
    std::uint32_t crc = ckpt::crc32c(data.data(), split);
    crc = ckpt::crc32c_extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

// --------------------------------------------------------------- manifest

ckpt::Manifest sample_manifest() {
  ckpt::Manifest m;
  m.engine = "fp64";
  m.num_qubits = 4;
  m.num_local = 2;
  m.cursor = 3;
  m.schedule_crc = 0xdeadbeef;
  m.norm_squared = 0.1 + 0.2;  // not exactly representable: hexfloat test
  m.mapping = {2, 0, 3, 1};
  m.rng_state = Rng(99).serialize();
  m.pending_phase = {{1.0, 0.0},
                     {0.7071067811865476, 0.7071067811865475},
                     {-1.0, 1e-17},
                     {0.0, -1.0}};
  m.shards = {{64, 0x1}, {64, 0x2}, {64, 0x3}, {64, 0x4}};
  return m;
}

TEST(Manifest, RoundTripIsBitExact) {
  const ckpt::Manifest m = sample_manifest();
  const ckpt::Manifest back =
      ckpt::manifest_from_string(ckpt::manifest_to_string(m));
  EXPECT_EQ(back.engine, m.engine);
  EXPECT_EQ(back.num_qubits, m.num_qubits);
  EXPECT_EQ(back.num_local, m.num_local);
  EXPECT_EQ(back.cursor, m.cursor);
  EXPECT_EQ(back.schedule_crc, m.schedule_crc);
  EXPECT_EQ(std::memcmp(&back.norm_squared, &m.norm_squared,
                        sizeof(double)),
            0);
  EXPECT_EQ(back.mapping, m.mapping);
  EXPECT_EQ(back.rng_state, m.rng_state);
  ASSERT_EQ(back.pending_phase.size(), m.pending_phase.size());
  for (std::size_t r = 0; r < m.pending_phase.size(); ++r) {
    EXPECT_EQ(std::memcmp(&back.pending_phase[r], &m.pending_phase[r],
                          sizeof(std::complex<double>)),
              0)
        << "rank " << r;
  }
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (std::size_t r = 0; r < m.shards.size(); ++r) {
    EXPECT_EQ(back.shards[r].bytes, m.shards[r].bytes);
    EXPECT_EQ(back.shards[r].crc, m.shards[r].crc);
  }
}

TEST(Manifest, DetectsTruncationAndCorruption) {
  const std::string text = ckpt::manifest_to_string(sample_manifest());
  // Any truncation loses the trailing self-CRC line.
  EXPECT_THROW(ckpt::manifest_from_string(text.substr(0, text.size() / 2)),
               check::ValidationError);
  EXPECT_THROW(ckpt::manifest_from_string(""), check::ValidationError);
  // A single flipped character breaks the self-CRC.
  std::string flipped = text;
  flipped[text.size() / 3] ^= 0x20;
  EXPECT_THROW(ckpt::manifest_from_string(flipped), check::ValidationError);
}

// ------------------------------------------------------------ fault specs

TEST(FaultSpec, ParsesTheGrammar) {
  const auto specs =
      ckpt::parse_fault_specs("kill_stage:7,corrupt_shard:3,torn_manifest");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, ckpt::FaultKind::kKillStage);
  EXPECT_EQ(specs[0].value, 7);
  EXPECT_EQ(specs[1].kind, ckpt::FaultKind::kCorruptShard);
  EXPECT_EQ(specs[1].value, 3);
  EXPECT_EQ(specs[2].kind, ckpt::FaultKind::kTornManifest);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(ckpt::parse_fault_specs("explode"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("kill_stage"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("kill_stage:"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("kill_stage:3x"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("kill_stage:-1"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("corrupt_shard:two"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("torn_manifest:1"), Error);
  EXPECT_THROW(ckpt::parse_fault_specs("kill_stage:1,,"), Error);
}

// ----------------------------------------------------------- writer/reader

/// A tiny but structurally valid snapshot: 2 qubits, 1 local, 2 ranks.
void fill_snapshot(ckpt::Snapshot& snap, std::size_t cursor,
                   std::uint8_t salt) {
  ckpt::Manifest& m = snap.manifest;
  m.engine = "fp64";
  m.num_qubits = 2;
  m.num_local = 1;
  m.cursor = cursor;
  m.schedule_crc = 0;
  m.norm_squared = 1.0;
  m.mapping = {0, 1};
  m.rng_state.clear();
  m.pending_phase = {{1.0, 0.0}, {1.0, 0.0}};
  m.shards.clear();
  snap.shard_bytes.assign(2, std::vector<std::uint8_t>(32));
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < 32; ++i) {
      snap.shard_bytes[r][i] =
          static_cast<std::uint8_t>(salt + 31 * r + i);
    }
  }
}

TEST(Writer, BackgroundAndSyncProduceIdenticalGenerations) {
  ckpt::CheckpointOptions bg_opts;
  bg_opts.directory = test_dir("writer_bg");
  ckpt::CheckpointOptions sync_opts;
  sync_opts.directory = test_dir("writer_sync");
  sync_opts.background = false;
  {
    ckpt::CheckpointWriter bg(bg_opts);
    ckpt::CheckpointWriter sync(sync_opts);
    for (std::size_t cursor : {1, 2}) {
      bg.wait_idle();
      fill_snapshot(bg.staging(), cursor,
                    static_cast<std::uint8_t>(cursor));
      bg.commit();
      sync.wait_idle();
      fill_snapshot(sync.staging(), cursor,
                    static_cast<std::uint8_t>(cursor));
      sync.commit();
    }
    bg.close();
    sync.close();
    EXPECT_EQ(bg.stats().snapshots, 2u);
    EXPECT_EQ(bg.stats().bytes_written, sync.stats().bytes_written);
  }
  for (const char* gen : {"gen-000001", "gen-000002"}) {
    for (const char* file :
         {"manifest.txt", "shard-0000.bin", "shard-0001.bin"}) {
      EXPECT_EQ(read_file(fs::path(bg_opts.directory) / gen / file),
                read_file(fs::path(sync_opts.directory) / gen / file))
          << gen << "/" << file;
    }
  }
}

TEST(Writer, PrunesToKeepGenerations) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("writer_prune");
  opts.keep_generations = 2;
  ckpt::CheckpointWriter writer(opts);
  for (std::size_t cursor = 1; cursor <= 5; ++cursor) {
    writer.wait_idle();
    fill_snapshot(writer.staging(), cursor,
                  static_cast<std::uint8_t>(cursor));
    writer.commit();
  }
  writer.close();
  EXPECT_EQ(writer.stats().snapshots, 5u);
  EXPECT_EQ(writer.stats().generations_pruned, 3u);
  const ckpt::CheckpointReader reader(opts.directory);
  EXPECT_EQ(reader.generations(),
            (std::vector<std::string>{"gen-000005", "gen-000004"}));
}

TEST(Reader, LoadsAndVerifiesAGeneration) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("reader_load");
  ckpt::CheckpointWriter writer(opts);
  writer.wait_idle();
  fill_snapshot(writer.staging(), 1, 0x11);
  const std::vector<std::vector<std::uint8_t>> expected =
      writer.staging().shard_bytes;
  writer.commit();
  writer.close();
  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->generation, "gen-000001");
  EXPECT_EQ(snap->fallbacks, 0);
  EXPECT_EQ(snap->manifest.cursor, 1u);
  EXPECT_EQ(snap->shard_bytes, expected);
}

TEST(Reader, FallsBackPastACorruptShard) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("reader_fallback");
  ckpt::CheckpointWriter writer(opts);
  // Arm the corruption fault AFTER construction (from_env found none):
  // writer close flips a byte in the newest generation's shard 1.
  writer.fault().arm({ckpt::FaultKind::kCorruptShard, 1});
  for (std::size_t cursor : {1, 2}) {
    writer.wait_idle();
    fill_snapshot(writer.staging(), cursor,
                  static_cast<std::uint8_t>(cursor));
    writer.commit();
  }
  writer.close();
  EXPECT_EQ(writer.stats().injected_faults, 1u);
  const ckpt::CheckpointReader reader(opts.directory);
  EXPECT_THROW(reader.load("gen-000002"), check::ValidationError);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->generation, "gen-000001");
  EXPECT_EQ(snap->fallbacks, 1);
}

TEST(Reader, FallsBackPastATornManifest) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("reader_torn");
  ckpt::CheckpointWriter writer(opts);
  writer.fault().arm({ckpt::FaultKind::kTornManifest, 0});
  for (std::size_t cursor : {1, 2}) {
    writer.wait_idle();
    fill_snapshot(writer.staging(), cursor,
                  static_cast<std::uint8_t>(cursor));
    writer.commit();
  }
  writer.close();
  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->generation, "gen-000001");
  EXPECT_EQ(snap->fallbacks, 1);
}

// ------------------------------------------------- compressed shards

TEST(Manifest, CodecLineRoundTripsWithRawIntegrity) {
  ckpt::Manifest m = sample_manifest();
  m.codec = oocore::Codec::kLz;
  m.shards = {{40, 0x1, 64, 0x5},
              {41, 0x2, 64, 0x6},
              {42, 0x3, 64, 0x7},
              {43, 0x4, 64, 0x8}};
  const std::string text = ckpt::manifest_to_string(m);
  EXPECT_NE(text.find("codec lz"), std::string::npos);
  const ckpt::Manifest back = ckpt::manifest_from_string(text);
  EXPECT_EQ(back.codec, oocore::Codec::kLz);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (std::size_t r = 0; r < m.shards.size(); ++r) {
    EXPECT_EQ(back.shards[r].bytes, m.shards[r].bytes);
    EXPECT_EQ(back.shards[r].crc, m.shards[r].crc);
    EXPECT_EQ(back.shards[r].raw_bytes, m.shards[r].raw_bytes);
    EXPECT_EQ(back.shards[r].raw_crc, m.shards[r].raw_crc);
  }
  // Legacy manifests (no codec line) stay parseable: raw integrity
  // defaults to the on-disk values.
  const ckpt::Manifest legacy =
      ckpt::manifest_from_string(ckpt::manifest_to_string(sample_manifest()));
  EXPECT_EQ(legacy.codec, oocore::Codec::kRaw);
  EXPECT_EQ(legacy.shards[0].raw_bytes, legacy.shards[0].bytes);
  EXPECT_EQ(legacy.shards[0].raw_crc, legacy.shards[0].crc);
}

TEST(Writer, RejectsLossyShardCodecs) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("writer_lossy");
  opts.codec = oocore::Codec::kFp32;
  EXPECT_THROW(ckpt::CheckpointWriter{opts}, Error);
  opts.codec = oocore::Codec::kFp32Lz;
  EXPECT_THROW(ckpt::CheckpointWriter{opts}, Error);
}

TEST(Writer, CompressedShardsRoundTripAndShrinkOnDisk) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("writer_lz");
  opts.codec = oocore::Codec::kLz;
  ckpt::CheckpointWriter writer(opts);
  writer.wait_idle();
  fill_snapshot(writer.staging(), 1, 0x42);
  // Make the shards look like a normalized state: repetitive structure
  // the byte-plane + LZ pass can exploit.
  for (auto& shard : writer.staging().shard_bytes) {
    shard.assign(4096, 0);
    for (std::size_t i = 0; i < shard.size(); i += 8) shard[i] = 0x3f;
  }
  const std::vector<std::vector<std::uint8_t>> expected =
      writer.staging().shard_bytes;
  writer.commit();
  writer.close();

  // Smaller on disk than the raw amplitudes.
  const fs::path gen = fs::path(opts.directory) / "gen-000001";
  for (int r = 0; r < 2; ++r) {
    EXPECT_LT(fs::file_size(gen / ckpt::shard_file_name(r)),
              expected[static_cast<std::size_t>(r)].size());
  }

  // And bit-exact after the decode.
  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->manifest.codec, oocore::Codec::kLz);
  EXPECT_EQ(snap->shard_bytes, expected);
  ASSERT_EQ(snap->manifest.shards.size(), 2u);
  EXPECT_EQ(snap->manifest.shards[0].raw_bytes, expected[0].size());
  EXPECT_LT(snap->manifest.shards[0].bytes,
            snap->manifest.shards[0].raw_bytes);
}

TEST(Reader, FallsBackPastACorruptCompressedShard) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("reader_lz_fallback");
  opts.codec = oocore::Codec::kLz;
  ckpt::CheckpointWriter writer(opts);
  // The close-time fault flips a byte mid-file — inside the frame
  // payload — so either the file CRC or the frame's own CRC must trip.
  writer.fault().arm({ckpt::FaultKind::kCorruptShard, 1});
  for (std::size_t cursor : {1, 2}) {
    writer.wait_idle();
    fill_snapshot(writer.staging(), cursor,
                  static_cast<std::uint8_t>(cursor));
    writer.commit();
  }
  writer.close();
  EXPECT_EQ(writer.stats().injected_faults, 1u);
  const ckpt::CheckpointReader reader(opts.directory);
  EXPECT_THROW(reader.load("gen-000002"), check::ValidationError);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->generation, "gen-000001");
  EXPECT_EQ(snap->fallbacks, 1);
}

TEST(Reader, EmptyDirectoryYieldsNothing) {
  const ckpt::CheckpointReader reader(test_dir("reader_empty"));
  EXPECT_TRUE(reader.generations().empty());
  EXPECT_FALSE(reader.load_latest().has_value());
}

TEST(Reader, IgnoresTmpLeftovers) {
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("reader_tmp");
  ckpt::CheckpointWriter writer(opts);
  writer.wait_idle();
  fill_snapshot(writer.staging(), 1, 0x31);
  writer.commit();
  writer.close();
  // A .tmp directory as a killed writer would leave it.
  fs::create_directory(fs::path(opts.directory) / "gen-000002.tmp");
  const ckpt::CheckpointReader reader(opts.directory);
  EXPECT_EQ(reader.generations(),
            std::vector<std::string>{"gen-000001"});
}

// ------------------------------------------------- end-to-end recovery

struct Workload {
  Circuit circuit;
  Schedule schedule;
  int n = 0;
  int l = 0;
};

Workload make_workload() {
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 3;
  so.depth = 10;
  so.seed = 7;
  so.initial_hadamards = false;
  Circuit circuit = make_supremacy_circuit(so);
  const int n = so.rows * so.cols;
  const int l = n - 3;
  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 3;
  Schedule schedule = make_schedule(circuit, sched);
  return Workload{std::move(circuit), std::move(schedule), n, l};
}

TEST(Recovery, KillAtStageBoundaryResumesBitIdentical) {
  const Workload w = make_workload();
  ASSERT_GE(w.schedule.stages.size(), 3u) << "workload too small to kill";
  const std::size_t kill_at = w.schedule.stages.size() / 2;

  // Reference: uninterrupted, no checkpointing.
  DistributedSimulator clean(w.n, w.l);
  clean.init_uniform();
  clean.run(w.circuit, w.schedule);
  const StateVector expected = clean.gather();
  Rng clean_rng(2024);
  const std::vector<Index> expected_samples = clean.sample(64, clean_rng);

  // Checkpointed run killed at the stage boundary.
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_kill");
  Rng rng(2024);
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm(
        {ckpt::FaultKind::kKillStage, static_cast<int>(kill_at)});
    writer.fault().set_kill_throws(true);  // gtest cannot survive _Exit
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    ckpt_run.rng = &rng;
    EXPECT_THROW(sim.run(w.circuit, w.schedule, ckpt_run),
                 ckpt::SimulatedKill);
  }

  // Restart: fresh simulator + fresh RNG, everything from disk.
  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->manifest.cursor, kill_at);
  DistributedSimulator resumed(w.n, w.l);
  Rng resumed_rng(1);  // wrong seed on purpose; restore must fix it
  const std::size_t cursor =
      resumed.resume(*snap, w.circuit, w.schedule, &resumed_rng);
  EXPECT_EQ(cursor, kill_at);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  continue_run.rng = &resumed_rng;
  resumed.run(w.circuit, w.schedule, continue_run);
  writer2.close();

  const StateVector actual = resumed.gather();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(Amplitude) * expected.size()),
            0)
      << "resumed final state differs from the uninterrupted run";
  EXPECT_EQ(resumed.sample(64, resumed_rng), expected_samples);
}

TEST(Recovery, CorruptShardFallsBackAndStillMatches) {
  const Workload w = make_workload();
  ASSERT_GE(w.schedule.stages.size(), 2u);

  DistributedSimulator clean(w.n, w.l);
  clean.init_uniform();
  clean.run(w.circuit, w.schedule);
  const StateVector expected = clean.gather();

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_corrupt");
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm({ckpt::FaultKind::kCorruptShard, 3});
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    sim.run(w.circuit, w.schedule, ckpt_run);
    writer.close();  // corrupts the newest generation's shard 3
  }

  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->fallbacks, 1);
  ASSERT_LT(snap->manifest.cursor, w.schedule.stages.size());

  DistributedSimulator resumed(w.n, w.l);
  const std::size_t cursor = resumed.resume(*snap, w.circuit, w.schedule);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  resumed.run(w.circuit, w.schedule, continue_run);
  writer2.close();

  const StateVector actual = resumed.gather();
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(Amplitude) * expected.size()),
            0);
}

TEST(Recovery, CompressedCheckpointResumesBitIdenticalPastCorruption) {
  const Workload w = make_workload();
  DistributedSimulator clean(w.n, w.l);
  clean.init_uniform();
  clean.run(w.circuit, w.schedule);
  const StateVector expected = clean.gather();

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_lz");
  opts.codec = oocore::Codec::kLz;
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm({ckpt::FaultKind::kCorruptShard, 2});
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    sim.run(w.circuit, w.schedule, ckpt_run);
    writer.close();  // corrupts a compressed frame in the newest gen
  }

  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->fallbacks, 1);
  EXPECT_EQ(snap->manifest.codec, oocore::Codec::kLz);
  ASSERT_LT(snap->manifest.cursor, w.schedule.stages.size());

  DistributedSimulator resumed(w.n, w.l);
  const std::size_t cursor = resumed.resume(*snap, w.circuit, w.schedule);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  resumed.run(w.circuit, w.schedule, continue_run);
  writer2.close();

  const StateVector actual = resumed.gather();
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(Amplitude) * expected.size()),
            0)
      << "state restored from compressed shards differs";
}

TEST(Recovery, TornManifestFallsBackAndStillMatches) {
  const Workload w = make_workload();
  DistributedSimulator clean(w.n, w.l);
  clean.init_uniform();
  clean.run(w.circuit, w.schedule);
  const StateVector expected = clean.gather();

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_torn");
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm({ckpt::FaultKind::kTornManifest, 0});
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    sim.run(w.circuit, w.schedule, ckpt_run);
    writer.close();  // tears the newest generation's manifest
  }

  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->fallbacks, 1);

  DistributedSimulator resumed(w.n, w.l);
  const std::size_t cursor = resumed.resume(*snap, w.circuit, w.schedule);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  resumed.run(w.circuit, w.schedule, continue_run);
  writer2.close();

  const StateVector actual = resumed.gather();
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(Amplitude) * expected.size()),
            0);
}

TEST(Recovery, Fp32KillAtStageBoundaryResumesBitIdentical) {
  const Workload w = make_workload();
  ASSERT_GE(w.schedule.stages.size(), 3u);
  const std::size_t kill_at = w.schedule.stages.size() / 2;

  DistributedSimulatorF clean(w.n, w.l);
  clean.init_uniform();
  clean.run(w.circuit, w.schedule);
  const StateVectorF expected = clean.gather();

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_kill_f32");
  {
    DistributedSimulatorF sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm(
        {ckpt::FaultKind::kKillStage, static_cast<int>(kill_at)});
    writer.fault().set_kill_throws(true);
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    EXPECT_THROW(sim.run(w.circuit, w.schedule, ckpt_run),
                 ckpt::SimulatedKill);
  }

  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->manifest.engine, "fp32");
  DistributedSimulatorF resumed(w.n, w.l);
  const std::size_t cursor = resumed.resume(*snap, w.circuit, w.schedule);
  EXPECT_EQ(cursor, kill_at);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  resumed.run(w.circuit, w.schedule, continue_run);
  writer2.close();

  const StateVectorF actual = resumed.gather();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(AmplitudeF) * expected.size()),
            0)
      << "resumed fp32 final state differs from the uninterrupted run";
}

TEST(Recovery, ResumeRejectsCrossEngineAndWrongGeometry) {
  const Workload w = make_workload();
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_reject");
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    sim.run(w.circuit, w.schedule, ckpt_run);
    writer.close();
  }
  const auto snap = ckpt::CheckpointReader(opts.directory).load_latest();
  ASSERT_TRUE(snap.has_value());
  // fp64 snapshot into the fp32 engine: engine tag mismatch.
  DistributedSimulatorF wrong_engine(w.n, w.l);
  EXPECT_THROW(wrong_engine.resume(*snap, w.circuit, w.schedule),
               check::ValidationError);
  // fp64 snapshot into a differently shaped fp64 simulator.
  DistributedSimulator wrong_shape(w.n, w.l + 1);
  EXPECT_THROW(wrong_shape.resume(*snap, w.circuit, w.schedule),
               check::ValidationError);
}

TEST(Recovery, ResumeRejectsADifferentSchedule) {
  const Workload w = make_workload();
  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("recovery_schedule");
  {
    DistributedSimulator sim(w.n, w.l);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    sim.run(w.circuit, w.schedule, ckpt_run);
    writer.close();
  }
  const auto snap = ckpt::CheckpointReader(opts.directory).load_latest();
  ASSERT_TRUE(snap.has_value());
  // Same geometry, different gate content -> different schedule digest.
  SupremacyOptions so;
  so.rows = 2;
  so.cols = 3;
  so.depth = 6;
  so.seed = 8;
  so.initial_hadamards = false;
  const Circuit other_circuit = make_supremacy_circuit(so);
  ScheduleOptions sched;
  sched.num_local = w.l;
  sched.kmax = 3;
  const Schedule other = make_schedule(other_circuit, sched);
  DistributedSimulator sim(w.n, w.l);
  EXPECT_THROW(sim.resume(*snap, other_circuit, other),
               check::ValidationError);
}

}  // namespace
}  // namespace quasar
