#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.hpp"
#include "core/rng.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"
#include "simulator/statevector.hpp"

namespace quasar {
namespace {

TEST(StateVector, InitializesToZeroState) {
  StateVector s(5);
  EXPECT_EQ(s.size(), 32u);
  EXPECT_EQ(s[0], Amplitude{1.0});
  for (Index i = 1; i < s.size(); ++i) EXPECT_EQ(s[i], Amplitude{0.0});
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-15);
}

TEST(StateVector, SetBasisState) {
  StateVector s(4);
  s.set_basis_state(9);
  EXPECT_EQ(s[9], Amplitude{1.0});
  EXPECT_EQ(s[0], Amplitude{0.0});
  EXPECT_THROW(s.set_basis_state(16), Error);
}

TEST(StateVector, UniformSuperposition) {
  StateVector s(6);
  s.set_uniform_superposition();
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
  EXPECT_NEAR(s[17].real(), std::pow(2.0, -3.0), 1e-15);
}

TEST(StateVector, UniformEqualsHadamardLayer) {
  // The Sec. 3.6 optimization: skipping the cycle-0 H layer and starting
  // from (2^{-n/2}, ...) must equal actually applying the H gates.
  const int n = 5;
  StateVector via_gates(n);
  Circuit h_layer(n);
  for (int q = 0; q < n; ++q) h_layer.h(q);
  reference_run(via_gates, h_layer);

  StateVector direct(n);
  direct.set_uniform_superposition();
  EXPECT_LT(direct.max_abs_diff(via_gates), 1e-14);
}

TEST(StateVector, Validation) {
  EXPECT_THROW(StateVector(0), Error);
  EXPECT_THROW(StateVector(41), Error);
}

TEST(Simulator, GhzState) {
  const int n = 4;
  StateVector s(n);
  Simulator sim(s);
  Circuit c(n);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cnot(q, q + 1);
  sim.run(c);
  const double amp = std::sqrt(0.5);
  EXPECT_NEAR(std::abs(s[0]), amp, 1e-12);
  EXPECT_NEAR(std::abs(s[s.size() - 1]), amp, 1e-12);
  for (Index i = 1; i + 1 < s.size(); ++i) {
    EXPECT_NEAR(std::abs(s[i]), 0.0, 1e-12);
  }
}

TEST(Simulator, MatchesReferenceOnRandomCircuit) {
  Rng rng(42);
  const int n = 8;
  Circuit c(n);
  for (int i = 0; i < 60; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(4));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.append_custom({a}, gates::random_su2(rng)); break;
      case 2: c.cz(a, b); break;
      case 3: c.cnot(a, b); break;
    }
  }
  StateVector fast(n), slow(n);
  Simulator sim(fast);
  sim.run(c);
  reference_run(slow, c);
  EXPECT_LT(fast.max_abs_diff(slow), 1e-11);
}

TEST(Simulator, QftMatchesAnalyticResult) {
  // QFT of |0...0> is the uniform superposition.
  const int n = 6;
  StateVector s(n);
  Simulator sim(s);
  Circuit c(n);
  for (int q = n - 1; q >= 0; --q) {
    c.h(q);
    for (int j = q - 1; j >= 0; --j) {
      c.cphase(j, q, std::numbers::pi / (1 << (q - j)));
    }
  }
  sim.run(c);
  for (Index i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s[i].real(), std::pow(2.0, -3.0), 1e-12);
    EXPECT_NEAR(s[i].imag(), 0.0, 1e-12);
  }
}

TEST(Simulator, RunValidatesWidth) {
  StateVector s(3);
  Simulator sim(s);
  Circuit wrong(4);
  wrong.h(0);
  EXPECT_THROW(sim.run(wrong), Error);
}

}  // namespace
}  // namespace quasar
