/// Communicator seam tests (DESIGN.md §12): cross-transport bit parity
/// between the in-process virtual cluster and the forked multi-process
/// backend — gathered state, reductions, sample streams and CommStats
/// volume fields all agree exactly — plus the proc-only failure paths:
/// a SIGKILLed rank surfaces as quasar::Error and the remaining rank
/// processes are torn down (no zombies, no leaked pids), and a
/// fault-injected kill lands in a real rank process before the root dies
/// so kill/resume works across process boundaries.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/fault.hpp"
#include "fp32/distributed_f32.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "gates/standard.hpp"
#include "runtime/communicator.hpp"
#include "runtime/distributed.hpp"
#include "runtime/proc_transport.hpp"
#include "sched/schedule.hpp"

namespace quasar {
namespace {

namespace fs = std::filesystem;

Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(6));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.t(a); break;
      case 2: c.sqrt_x(a); break;
      case 3: c.append_custom({a}, gates::random_su2(rng)); break;
      case 4: c.cz(a, b); break;
      case 5: c.cnot(a, b); break;
    }
  }
  return c;
}

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("quasar_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Volume fields must agree exactly across transports; peak_bounce_bytes
/// is chunking/thread-count dependent by design and deliberately not
/// compared.
void expect_stats_volume_equal(const CommStats& a, const CommStats& b) {
  EXPECT_EQ(a.alltoalls, b.alltoalls);
  EXPECT_EQ(a.pairwise_exchanges, b.pairwise_exchanges);
  EXPECT_EQ(a.bytes_sent_per_rank, b.bytes_sent_per_rank);
  EXPECT_EQ(a.local_swap_sweeps, b.local_swap_sweeps);
  EXPECT_EQ(a.local_permutation_sweeps, b.local_permutation_sweeps);
  EXPECT_EQ(a.local_permutation_bytes, b.local_permutation_bytes);
  EXPECT_EQ(a.rank_renumberings, b.rank_renumberings);
}

// ------------------------------------------------------- transport_from_env

TEST(TransportFromEnv, ParsesStrictly) {
  ::unsetenv("QUASAR_TRANSPORT");
  EXPECT_EQ(transport_from_env(), TransportKind::kVirtual);
  EXPECT_EQ(transport_from_env(TransportKind::kProc), TransportKind::kProc);
  ::setenv("QUASAR_TRANSPORT", "virtual", 1);
  EXPECT_EQ(transport_from_env(), TransportKind::kVirtual);
  ::setenv("QUASAR_TRANSPORT", "proc", 1);
  EXPECT_EQ(transport_from_env(), TransportKind::kProc);
  ::setenv("QUASAR_TRANSPORT", "mpi", 1);
  EXPECT_THROW(transport_from_env(), Error);
  ::setenv("QUASAR_TRANSPORT", "Proc", 1);
  EXPECT_THROW(transport_from_env(), Error);  // no case folding
  ::setenv("QUASAR_TRANSPORT", "", 1);
  EXPECT_EQ(transport_from_env(), TransportKind::kVirtual);
  ::unsetenv("QUASAR_TRANSPORT");
}

TEST(TransportFactory, ProcRejectsOocoreAndWideGeometries) {
  StorageOptions oocore;
  oocore.medium = StorageMedium::kOocore;
  EXPECT_THROW(
      make_communicator(8, 5, oocore, ApplyOptions{}, TransportKind::kProc),
      Error);
  // g = 5 would need 32 rank processes; the proc cap is 16.
  EXPECT_THROW(make_communicator(12, 6, StorageOptions{}, ApplyOptions{},
                                 TransportKind::kProc),
               Error);
}

// ---------------------------------------------------------- bit parity

using Param = std::tuple<int /*n*/, int /*l*/, int /*seed*/>;

class CrossTransportParity : public ::testing::TestWithParam<Param> {};

TEST_P(CrossTransportParity, StateSamplesAndStatsBitExact) {
  const auto [n, l, seed] = GetParam();
  if (n - l > l) {
    GTEST_SKIP() << "the global-to-local swap scheme requires g <= l";
  }
  if (n - l > 4) {
    GTEST_SKIP() << "proc transport caps at 16 rank processes";
  }
  const Circuit c = random_circuit(n, 10 * n, seed);
  ScheduleOptions o;
  o.num_local = l;
  o.kmax = std::min(3, l);
  const Schedule schedule = make_schedule(c, o);

  DistributedSimulator virt(n, l, ApplyOptions{}, StorageOptions{},
                            TransportKind::kVirtual);
  DistributedSimulator proc(n, l, ApplyOptions{}, StorageOptions{},
                            TransportKind::kProc);
  ASSERT_FALSE(virt.multiprocess());
  ASSERT_TRUE(proc.multiprocess());
  virt.init_uniform();
  proc.init_uniform();
  virt.run(c, schedule);
  proc.run(c, schedule);

  // Same amplitudes, bit for bit (workers run the identical kernels at
  // one thread; thread count never changes kernel arithmetic).
  const StateVector sv = virt.gather();
  const StateVector sp = proc.gather();
  ASSERT_EQ(sv.size(), sp.size());
  EXPECT_EQ(std::memcmp(sv.data(), sp.data(), sv.size() * sizeof(Amplitude)),
            0);

  // Root-side reductions use the same loops over slices on both
  // transports: exact equality, not tolerance.
  EXPECT_EQ(virt.norm_squared(), proc.norm_squared());
  EXPECT_EQ(virt.entropy(), proc.entropy());

  // Same seed => bit-identical outcome streams.
  Rng rng_v(2024), rng_p(2024);
  EXPECT_EQ(virt.sample(64, rng_v), proc.sample(64, rng_p));

  // Identical communication volume.
  expect_stats_volume_equal(virt.stats(), proc.stats());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossTransportParity,
    ::testing::Combine(::testing::Values(6, 8, 10),
                       ::testing::Values(4, 5, 6),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CrossTransportParity, PairwiseGlobalGateMatchesVirtual) {
  const int n = 8, l = 6;
  auto virt = make_communicator(n, l, StorageOptions{}, ApplyOptions{},
                                TransportKind::kVirtual);
  auto proc = make_communicator(n, l, StorageOptions{}, ApplyOptions{},
                                TransportKind::kProc);
  virt->init_uniform();
  proc->init_uniform();
  const GateMatrix h = gates::h();
  // Twice, on both global locations, so amplitudes leave the uniform
  // state and the exchange direction flips.
  for (const int loc : {l, l + 1, l}) {
    virt->pairwise_global_gate(h, loc, ApplyOptions{});
    proc->pairwise_global_gate(h, loc, ApplyOptions{});
  }
  const std::size_t bytes =
      static_cast<std::size_t>(virt->local_size()) * sizeof(Amplitude);
  for (int r = 0; r < virt->num_ranks(); ++r) {
    EXPECT_EQ(std::memcmp(virt->slice(r), proc->slice(r), bytes), 0)
        << "rank " << r;
  }
  expect_stats_volume_equal(virt->stats(), proc->stats());
}

TEST(CrossTransportParity, DiskBackedProcSlicesMatch) {
  const int n = 8, l = 6;
  StorageOptions disk;
  disk.medium = StorageMedium::kDisk;
  disk.directory = test_dir("proc_disk");
  fs::create_directories(disk.directory);
  const Circuit c = random_circuit(n, 40, 7);
  ScheduleOptions o;
  o.num_local = l;
  DistributedSimulator virt(n, l, ApplyOptions{}, StorageOptions{},
                            TransportKind::kVirtual);
  DistributedSimulator proc(n, l, ApplyOptions{}, disk,
                            TransportKind::kProc);
  virt.init_basis(0);
  proc.init_basis(0);
  const Schedule schedule = make_schedule(c, o);
  virt.run(c, schedule);
  proc.run(c, schedule);
  const StateVector sv = virt.gather();
  const StateVector sp = proc.gather();
  EXPECT_EQ(std::memcmp(sv.data(), sp.data(), sv.size() * sizeof(Amplitude)),
            0);
}

// ----------------------------------------------------- proc failure paths

TEST(ProcTransport, KilledRankSurfacesErrorAndLeavesNoZombies) {
  ProcCommunicator comm(8, 5, StorageOptions{});
  comm.init_uniform();
  proc::ProcessGroup& group = comm.process_group();
  std::vector<pid_t> pids;
  for (int s = 0; s < group.num_workers(); ++s) pids.push_back(group.pid(s));
  ASSERT_EQ(pids.size(), 8u);

  // A real SIGKILL, not the cooperative kDie path: the victim vanishes
  // mid-protocol and the next collective must fail loudly.
  ASSERT_EQ(::kill(pids[3], SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pids[3], &status, 0), pids[3]);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_THROW(comm.init_uniform(), Error);

  // Teardown must reap every remaining worker.
  group.shutdown();
  for (int s = 0; s < group.num_workers(); ++s) {
    EXPECT_FALSE(group.alive(s)) << "slot " << s;
  }
  for (const pid_t pid : pids) {
    // Reaped means waitpid says "no such child" (not a zombie entry).
    EXPECT_EQ(::waitpid(pid, &status, WNOHANG), -1) << "pid " << pid;
    EXPECT_EQ(errno, ECHILD) << "pid " << pid;
  }
}

TEST(ProcTransport, FaultKillLandsInRankProcess) {
  ProcCommunicator comm(7, 4, StorageOptions{});
  comm.init_uniform();
  proc::ProcessGroup& group = comm.process_group();
  const std::size_t stage = 5;  // victim = 5 mod 8
  const pid_t victim = group.pid(static_cast<int>(stage) % 8);
  EXPECT_TRUE(comm.kill_rank_for_fault(stage));
  // The victim really died (kill_worker checked exit status 137) and the
  // survivors were torn down with it.
  int status = 0;
  EXPECT_EQ(::waitpid(victim, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  for (int s = 0; s < group.num_workers(); ++s) {
    EXPECT_FALSE(group.alive(s)) << "slot " << s;
  }
}

TEST(ProcTransport, CheckpointKillResumeAcrossProcesses) {
  const int n = 9, l = 6;
  const Circuit c = random_circuit(n, 10 * n, 11);
  ScheduleOptions o;
  o.num_local = l;
  const Schedule schedule = make_schedule(c, o);
  ASSERT_GE(schedule.stages.size(), 3u);
  const std::size_t kill_at = schedule.stages.size() / 2;

  // Reference: uninterrupted proc run must match virtual bit for bit.
  DistributedSimulator clean(n, l, ApplyOptions{}, StorageOptions{},
                             TransportKind::kVirtual);
  clean.init_uniform();
  clean.run(c, schedule);
  const StateVector expected = clean.gather();
  Rng clean_rng(2024);
  const std::vector<Index> expected_samples = clean.sample(64, clean_rng);

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("proc_kill_resume");
  Rng rng(2024);
  {
    DistributedSimulator sim(n, l, ApplyOptions{}, StorageOptions{},
                             TransportKind::kProc);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm(
        {ckpt::FaultKind::kKillStage, static_cast<int>(kill_at)});
    writer.fault().set_kill_throws(true);  // gtest cannot survive _Exit
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    ckpt_run.rng = &rng;
    EXPECT_THROW(sim.run(c, schedule, ckpt_run), ckpt::SimulatedKill);
    // The delegate killed a real rank process and tore the rest down
    // before the injector "killed" the root, so the next collective
    // fails loudly.
    EXPECT_THROW(sim.init_basis(0), Error);
  }

  // Restart into fresh rank processes, everything from disk.
  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->manifest.cursor, kill_at);
  DistributedSimulator resumed(n, l, ApplyOptions{}, StorageOptions{},
                               TransportKind::kProc);
  Rng resumed_rng(1);  // wrong seed on purpose; restore must fix it
  const std::size_t cursor = resumed.resume(*snap, c, schedule, &resumed_rng);
  EXPECT_EQ(cursor, kill_at);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  continue_run.rng = &resumed_rng;
  resumed.run(c, schedule, continue_run);
  writer2.close();

  const StateVector actual = resumed.gather();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(Amplitude) * expected.size()),
            0)
      << "proc resume diverged from the uninterrupted virtual run";
  EXPECT_EQ(resumed.sample(64, resumed_rng), expected_samples);
}

// ------------------------------------------------------------ fp32 seam

TEST(CrossTransportParityF32, StateAndStatsBitExact) {
  for (const auto& [n, l] : {std::pair{6, 4}, std::pair{8, 5},
                             std::pair{10, 6}}) {
    const Circuit c = random_circuit(n, 10 * n, 3);
    ScheduleOptions o;
    o.num_local = l;
    o.kmax = std::min(3, l);
    const Schedule schedule = make_schedule(c, o);

    DistributedSimulatorF virt(n, l, 0, std::size_t{64} << 20,
                               TransportKind::kVirtual);
    DistributedSimulatorF proc(n, l, 0, std::size_t{64} << 20,
                               TransportKind::kProc);
    ASSERT_FALSE(virt.multiprocess());
    ASSERT_TRUE(proc.multiprocess());
    virt.init_uniform();
    proc.init_uniform();
    virt.run(c, schedule);
    proc.run(c, schedule);

    const StateVectorF sv = virt.gather();
    const StateVectorF sp = proc.gather();
    ASSERT_EQ(sv.size(), sp.size());
    EXPECT_EQ(
        std::memcmp(sv.data(), sp.data(), sv.size() * sizeof(AmplitudeF)), 0)
        << "n=" << n << " l=" << l;
    EXPECT_EQ(virt.norm_squared(), proc.norm_squared());
    EXPECT_EQ(virt.entropy(), proc.entropy());
    expect_stats_volume_equal(virt.stats(), proc.stats());

    // Per-rank slices agree too (no phase folding hides a mismatch).
    const std::size_t bytes =
        static_cast<std::size_t>(virt.local_size()) * sizeof(AmplitudeF);
    for (int r = 0; r < virt.num_ranks(); ++r) {
      EXPECT_EQ(std::memcmp(virt.rank_slice(r), proc.rank_slice(r), bytes),
                0)
          << "n=" << n << " l=" << l << " rank " << r;
    }
  }
}

TEST(ProcTransportF32, CheckpointKillResumeAcrossProcesses) {
  const int n = 8, l = 5;
  const Circuit c = random_circuit(n, 10 * n, 13);
  ScheduleOptions o;
  o.num_local = l;
  const Schedule schedule = make_schedule(c, o);
  ASSERT_GE(schedule.stages.size(), 3u);
  const std::size_t kill_at = schedule.stages.size() / 2;

  DistributedSimulatorF clean(n, l, 0, std::size_t{64} << 20,
                              TransportKind::kVirtual);
  clean.init_uniform();
  clean.run(c, schedule);
  const StateVectorF expected = clean.gather();

  ckpt::CheckpointOptions opts;
  opts.directory = test_dir("proc_kill_resume_f32");
  {
    DistributedSimulatorF sim(n, l, 0, std::size_t{64} << 20,
                              TransportKind::kProc);
    sim.init_uniform();
    ckpt::CheckpointWriter writer(opts);
    writer.fault().arm(
        {ckpt::FaultKind::kKillStage, static_cast<int>(kill_at)});
    writer.fault().set_kill_throws(true);  // gtest cannot survive _Exit
    CheckpointedRun ckpt_run;
    ckpt_run.writer = &writer;
    EXPECT_THROW(sim.run(c, schedule, ckpt_run), ckpt::SimulatedKill);
    EXPECT_THROW(sim.init_basis(0), Error);  // rank processes are gone
  }

  const ckpt::CheckpointReader reader(opts.directory);
  const auto snap = reader.load_latest();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->manifest.engine, "fp32");
  EXPECT_EQ(snap->manifest.cursor, kill_at);
  DistributedSimulatorF resumed(n, l, 0, std::size_t{64} << 20,
                                TransportKind::kProc);
  const std::size_t cursor = resumed.resume(*snap, c, schedule);
  EXPECT_EQ(cursor, kill_at);
  ckpt::CheckpointWriter writer2(opts);
  CheckpointedRun continue_run;
  continue_run.writer = &writer2;
  continue_run.first_stage = cursor;
  resumed.run(c, schedule, continue_run);
  writer2.close();

  const StateVectorF actual = resumed.gather();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(AmplitudeF) * expected.size()),
            0)
      << "fp32 proc resume diverged from the uninterrupted virtual run";
}

TEST(ProcTransport, ClusterAccessorThrows) {
  DistributedSimulator sim(6, 4, ApplyOptions{}, StorageOptions{},
                           TransportKind::kProc);
  EXPECT_THROW(sim.cluster(), Error);
  DistributedSimulator virt(6, 4);
  EXPECT_NO_THROW(virt.cluster());
}

}  // namespace
}  // namespace quasar
