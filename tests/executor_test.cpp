#include <gtest/gtest.h>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "sched/executor.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"

namespace quasar {
namespace {

Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int choice = static_cast<int>(rng.uniform_int(5));
    const Qubit a = static_cast<Qubit>(rng.uniform_int(n));
    Qubit b = static_cast<Qubit>(rng.uniform_int(n));
    while (b == a) b = static_cast<Qubit>(rng.uniform_int(n));
    switch (choice) {
      case 0: c.h(a); break;
      case 1: c.t(a); break;
      case 2: c.append_custom({a}, gates::random_su2(rng)); break;
      case 3: c.cz(a, b); break;
      case 4: c.cnot(a, b); break;
    }
  }
  return c;
}

class FusedRun : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(FusedRun, MatchesGateByGate) {
  const int n = 10;
  const Circuit c = random_circuit(n, 120, GetParam());
  StateVector plain(n), fused_state(n);
  Simulator sim(plain);
  sim.run(c);
  for (bool mapping : {false, true}) {
    fused_state.set_basis_state(0);
    FusedRunOptions options;
    options.kmax = 4;
    options.qubit_mapping = mapping;
    run_fused(fused_state, c, options);
    EXPECT_LT(fused_state.max_abs_diff(plain), 1e-10)
        << "mapping=" << mapping;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedRun, ::testing::Values(1, 2, 3));

TEST(FusedRunApi, SupremacyCircuitWithMapping) {
  SupremacyOptions so;
  so.rows = 4;
  so.cols = 3;
  so.depth = 18;
  so.seed = 2;
  const Circuit c = make_supremacy_circuit(so);
  StateVector expected(12), actual(12);
  reference_run(expected, c);
  run_fused(actual, c);
  EXPECT_LT(actual.max_abs_diff(expected), 1e-10);
}

TEST(FusedRunApi, ReusableScheduleAcrossStates) {
  const Circuit c = random_circuit(8, 60, 7);
  ScheduleOptions o;
  o.num_local = 8;
  o.kmax = 5;
  const Schedule schedule = make_schedule(c, o);

  StateVector a(8), b(8), expected(8);
  a.set_basis_state(3);
  b.set_uniform_superposition();
  run_fused(a, c, schedule);
  run_fused(b, c, schedule);

  expected.set_basis_state(3);
  reference_run(expected, c);
  EXPECT_LT(a.max_abs_diff(expected), 1e-10);
  EXPECT_NEAR(b.norm_squared(), 1.0, 1e-10);
}

TEST(FusedRunApi, RejectsMultiStageSchedule) {
  const Circuit c = random_circuit(8, 60, 8);
  ScheduleOptions o;
  o.num_local = 5;  // multi-node schedule
  o.kmax = 3;
  const Schedule schedule = make_schedule(c, o);
  StateVector s(8);
  if (schedule.stages.size() > 1) {
    EXPECT_THROW(run_fused(s, c, schedule), Error);
  }
  Circuit wrong(7);
  wrong.h(0);
  EXPECT_THROW(run_fused(s, wrong), Error);
}

}  // namespace
}  // namespace quasar
