/// Job-server subsystem tests (DESIGN.md §13): canonical schedule-digest
/// keying (rotation angles and geometry must change the key; the
/// checkpoint manifest refuses a digest mismatch), the LRU schedule
/// cache, wire-protocol parsing, admission control, and in-process
/// end-to-end serving — bit-identical results vs direct engine runs,
/// cache hits on repeated shapes, concurrent tenants, preempt-and-resume
/// under a single worker, and graceful shutdown that checkpoints
/// in-flight work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/io.hpp"
#include "circuit/supremacy.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "fp32/distributed_f32.hpp"
#include "runtime/distributed.hpp"
#include "sched/digest.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/fingerprint.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace quasar {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("quasar_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

Circuit small_supremacy(int rows, int cols, int depth, std::uint64_t seed) {
  SupremacyOptions options;
  options.rows = rows;
  options.cols = cols;
  options.depth = depth;
  options.seed = seed;
  return make_supremacy_circuit(options);
}

ScheduleOptions options_for(int num_local, int kmax = 5) {
  ScheduleOptions options;
  options.num_local = num_local;
  options.kmax = kmax;
  return options;
}

// ------------------------------------------------------ schedule digest

TEST(ScheduleDigest, StableAcrossCalls) {
  const Circuit circuit = small_supremacy(3, 3, 8, 5);
  const ScheduleOptions options = options_for(7);
  EXPECT_EQ(sched::schedule_digest(circuit, options),
            sched::schedule_digest(circuit, options));
  EXPECT_NE(sched::schedule_digest(circuit, options), 0u);
}

TEST(ScheduleDigest, RotationAngleChangesDigest) {
  // Two circuits identical except for one rotation angle must never
  // share a schedule-cache entry or satisfy each other's manifests.
  Circuit a(4);
  Circuit b(4);
  for (int q = 0; q < 4; ++q) {
    a.h(q);
    b.h(q);
  }
  a.rz(2, 0.25);
  b.rz(2, 0.25000001);
  const ScheduleOptions options = options_for(3);
  EXPECT_NE(sched::schedule_digest(a, options),
            sched::schedule_digest(b, options));
}

TEST(ScheduleDigest, GeometryAndOptionsChangeDigest) {
  const Circuit circuit = small_supremacy(3, 3, 8, 5);
  const std::uint32_t base =
      sched::schedule_digest(circuit, options_for(7));
  EXPECT_NE(base, sched::schedule_digest(circuit, options_for(6)));
  EXPECT_NE(base, sched::schedule_digest(circuit, options_for(7, 4)));
  ScheduleOptions full = options_for(7);
  full.specialization = SpecializationMode::kFull;
  EXPECT_NE(base, sched::schedule_digest(circuit, full));
}

TEST(ScheduleDigest, KeyTextIsVersionedAndReadable) {
  const Circuit circuit = small_supremacy(3, 3, 4, 1);
  const std::string key = sched::schedule_key_text(circuit, options_for(7));
  EXPECT_EQ(key.rfind("quasar-schedule-key 1\n", 0), 0u);
  EXPECT_NE(key.find("options local 7"), std::string::npos);
}

TEST(ScheduleDigest, ManifestRefusesAngleModifiedCircuit) {
  // The manifest carries the canonical circuit+options digest; resuming
  // against a circuit whose only difference is one rotation angle must
  // fail loudly instead of producing silently wrong amplitudes.
  const std::string dir = test_dir("digest_manifest");
  Circuit circuit(6);
  for (int q = 0; q < 6; ++q) circuit.h(q);
  circuit.rz(1, 0.5);
  circuit.cz(0, 5);
  circuit.cnot(2, 4);
  const ScheduleOptions options = options_for(4, 3);
  const Schedule schedule = make_schedule(circuit, options);

  DistributedSimulator sim(6, 4);
  sim.init_basis(0);
  ckpt::CheckpointOptions ckpt_options;
  ckpt_options.directory = dir;
  ckpt::CheckpointWriter writer(ckpt_options);
  CheckpointedRun run;
  run.writer = &writer;
  sim.run(circuit, schedule, run);
  writer.close();

  Circuit modified(6);
  for (int q = 0; q < 6; ++q) modified.h(q);
  modified.rz(1, 0.5000001);
  modified.cz(0, 5);
  modified.cnot(2, 4);

  const auto snapshot = ckpt::CheckpointReader(dir).load_latest();
  ASSERT_TRUE(snapshot.has_value());
  DistributedSimulator rejected(6, 4);
  EXPECT_THROW(rejected.resume(*snapshot, modified, schedule), Error);
  DistributedSimulator accepted(6, 4);
  EXPECT_EQ(accepted.resume(*snapshot, circuit, schedule),
            schedule.stages.size());
}

// -------------------------------------------------------- schedule cache

TEST(ScheduleCache, LruEvictionAndStats) {
  serve::ScheduleCache cache(2);
  auto schedule = [](int tag) {
    auto s = std::make_shared<Schedule>();
    s->num_qubits = tag;
    return std::shared_ptr<const Schedule>(s);
  };
  EXPECT_EQ(cache.lookup("a"), nullptr);
  cache.insert("a", schedule(1));
  cache.insert("b", schedule(2));
  EXPECT_NE(cache.lookup("a"), nullptr);  // refreshes a's recency
  cache.insert("c", schedule(3));         // evicts b, the LRU entry
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);

  const serve::ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ScheduleCache, HitReturnsSamePointer) {
  serve::ScheduleCache cache(4);
  auto schedule = std::make_shared<const Schedule>();
  cache.insert("key", schedule);
  EXPECT_EQ(cache.lookup("key").get(), schedule.get());
}

// --------------------------------------------------------- wire protocol

TEST(Protocol, JobSpecRoundTrips) {
  serve::JobSpec spec;
  spec.engine = "fp32";
  spec.local = 9;
  spec.kmax = 4;
  spec.mode = SpecializationMode::kFull;
  spec.samples = 16;
  spec.seed = 77;
  spec.uniform_init = true;
  spec.priority = serve::JobSpec::Priority::kBatch;
  spec.transport = TransportKind::kProc;
  spec.stall_ms = 250;

  const serve::JobSpec parsed =
      serve::JobSpec::parse(serve::split_tokens(spec.to_tokens()));
  EXPECT_EQ(parsed.engine, "fp32");
  EXPECT_EQ(parsed.local, 9);
  EXPECT_EQ(parsed.kmax, 4);
  EXPECT_EQ(parsed.mode, SpecializationMode::kFull);
  EXPECT_EQ(parsed.samples, 16);
  EXPECT_EQ(parsed.seed, 77u);
  EXPECT_TRUE(parsed.uniform_init);
  EXPECT_EQ(parsed.priority, serve::JobSpec::Priority::kBatch);
  EXPECT_EQ(parsed.transport, TransportKind::kProc);
  EXPECT_EQ(parsed.stall_ms, 250);
}

TEST(Protocol, JobSpecParsesStrictly) {
  EXPECT_THROW(serve::JobSpec::parse({"v=1", "flux=9"}), Error);
  EXPECT_THROW(serve::JobSpec::parse({"v=1", "engine=fp16"}), Error);
  EXPECT_THROW(serve::JobSpec::parse({"v=1", "local=ten"}), Error);
  EXPECT_THROW(serve::JobSpec::parse({"v=2"}), Error);
  EXPECT_THROW(serve::JobSpec::parse({"engine=fp64"}), Error);  // no v=1
  EXPECT_NO_THROW(serve::JobSpec::parse({"v=1"}));
}

TEST(Protocol, EndpointParsing) {
  const serve::Endpoint u = serve::parse_endpoint("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, serve::Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.to_string(), "unix:/tmp/x.sock");

  const serve::Endpoint t = serve::parse_endpoint("tcp:127.0.0.1:7777");
  EXPECT_EQ(t.kind, serve::Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7777);

  EXPECT_THROW(serve::parse_endpoint("udp:1.2.3.4:5"), Error);
  EXPECT_THROW(serve::parse_endpoint("unix:"), Error);
  EXPECT_THROW(serve::parse_endpoint("tcp:localhost"), Error);
  EXPECT_THROW(serve::parse_endpoint("tcp:1.2.3.4:notaport"), Error);
}

// ------------------------------------------------------------- admission

TEST(Admission, PeakBytesCoverStateAndBounce) {
  EXPECT_EQ(serve::peak_run_bytes(10, "fp64", 1 << 20),
            (std::uint64_t{16} << 10) + (1u << 20));
  EXPECT_EQ(serve::peak_run_bytes(10, "fp32", 0), std::uint64_t{8} << 10);
}

TEST(Admission, PeakBytesSaturateInsteadOfWrapping) {
  // 16 << n wraps uint64 at n >= 60 (fp64); the sizing must saturate so
  // an exabyte-scale job trips the budget check instead of passing it.
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(serve::peak_run_bytes(60, "fp64", 0), max64);
  EXPECT_EQ(serve::peak_run_bytes(62, "fp64", 1 << 20), max64);
  EXPECT_EQ(serve::peak_run_bytes(61, "fp32", 0), max64);
  EXPECT_EQ(serve::peak_run_bytes(59, "fp64", 0), std::uint64_t{1} << 63);

  serve::JobSpec spec;
  spec.local = 34;  // g = 28: inside the rank cap, so memory decides
  const Circuit widest(62);
  EXPECT_NE(serve::admission_error(widest, spec,
                                   serve::peak_run_bytes(62, "fp64", 0),
                                   std::uint64_t{8} << 30)
                .find("reason=memory"),
            std::string::npos);
}

TEST(Admission, RejectsGlobalQubitsBeyondRankCap) {
  // g beyond kMaxGlobalQubits must be a geometry rejection (2^g ranks
  // would overflow the pricing model's int), even under an unlimited
  // memory budget.
  serve::JobSpec spec;
  spec.local = 10;
  const Circuit wide(45);  // g = 35
  EXPECT_NE(serve::admission_error(
                wide, spec, 0, std::numeric_limits<std::uint64_t>::max())
                .find("reason=geometry"),
            std::string::npos);
  serve::JobSpec at_cap;
  at_cap.local = 45 - serve::kMaxGlobalQubits;  // g exactly at the cap
  EXPECT_EQ(serve::admission_error(
                wide, at_cap, 0, std::numeric_limits<std::uint64_t>::max()),
            std::string());
}

TEST(Admission, RejectsImpossibleGeometry) {
  serve::JobSpec spec;
  spec.engine = "fp32";
  spec.local = 6;
  const Circuit wide(20);  // g = 14 > 12 for fp32
  EXPECT_NE(serve::admission_error(wide, spec, 0, 1 << 30).find(
                "reason=geometry"),
            std::string::npos);

  serve::JobSpec lopsided;
  lopsided.engine = "fp32";
  lopsided.local = 4;  // g = 6 > l = 4
  const Circuit ten(10);
  EXPECT_NE(serve::admission_error(ten, lopsided, 0, 1 << 30).find(
                "reason=geometry"),
            std::string::npos);
}

TEST(Admission, RejectsFp32Sampling) {
  serve::JobSpec spec;
  spec.engine = "fp32";
  spec.local = 8;
  spec.samples = 4;
  const Circuit circuit(10);
  EXPECT_NE(serve::admission_error(circuit, spec, 0, 1 << 30).find(
                "reason=samples"),
            std::string::npos);
}

TEST(Admission, RejectsOverbudgetAndProcFanout) {
  serve::JobSpec spec;
  spec.local = 8;
  const Circuit circuit(10);
  EXPECT_NE(serve::admission_error(circuit, spec, 1000, 999).find(
                "reason=memory"),
            std::string::npos);

  serve::JobSpec proc;
  proc.local = 4;  // 64 ranks > the 16-process cap
  proc.transport = TransportKind::kProc;
  EXPECT_NE(serve::admission_error(circuit, proc, 0, 1 << 30).find(
                "reason=transport"),
            std::string::npos);
}

TEST(Admission, PricesAndClassifiesJobs) {
  const Circuit circuit = small_supremacy(3, 3, 8, 5);
  const ScheduleOptions options = options_for(7);
  const Schedule schedule = make_schedule(circuit, options);
  serve::JobSpec spec;
  spec.local = 7;

  serve::JobPrice price =
      serve::price_job(circuit, schedule, spec, 1 << 20, 1e9);
  EXPECT_GT(price.predicted_seconds, 0.0);
  EXPECT_GT(price.peak_bytes, std::uint64_t{16} << 9);
  EXPECT_TRUE(price.interactive);  // threshold is effectively infinite

  spec.priority = serve::JobSpec::Priority::kBatch;
  EXPECT_FALSE(serve::price_job(circuit, schedule, spec, 1 << 20, 1e9)
                   .interactive);
  spec.priority = serve::JobSpec::Priority::kInteractive;
  EXPECT_TRUE(serve::price_job(circuit, schedule, spec, 1 << 20, 0.0)
                  .interactive);
}

// ------------------------------------------------------------ end to end

/// The four canonical result lines of a direct (unserved) run.
std::vector<std::string> direct_lines(const Circuit& circuit,
                                      const serve::JobSpec& spec) {
  ScheduleOptions options = options_for(spec.local, spec.kmax);
  options.specialization = spec.mode;
  const Schedule schedule = make_schedule(circuit, options);
  Rng rng(spec.seed);
  std::vector<std::string> lines;
  if (spec.engine == "fp32") {
    DistributedSimulatorF sim(circuit.num_qubits(), spec.local);
    if (spec.uniform_init) {
      sim.init_uniform();
    } else {
      sim.init_basis(0);
    }
    sim.run(circuit, schedule);
    lines.push_back(
        serve::format_fingerprint_line(serve::state_fingerprint(sim)));
    lines.push_back(serve::format_norm_line(sim.norm_squared()));
    lines.push_back(serve::format_entropy_line(sim.entropy()));
    lines.push_back(serve::format_samples_line({}));
    return lines;
  }
  DistributedSimulator sim(circuit.num_qubits(), spec.local);
  if (spec.uniform_init) {
    sim.init_uniform();
  } else {
    sim.init_basis(0);
  }
  sim.run(circuit, schedule);
  lines.push_back(
      serve::format_fingerprint_line(serve::state_fingerprint(sim)));
  lines.push_back(serve::format_norm_line(sim.norm_squared()));
  lines.push_back(serve::format_entropy_line(sim.entropy()));
  lines.push_back(serve::format_samples_line(
      spec.samples > 0 ? sim.sample(spec.samples, rng)
                       : std::vector<Index>{}));
  return lines;
}

std::string circuit_text(const Circuit& circuit) {
  std::ostringstream out;
  write_circuit(out, circuit);
  return out.str();
}

serve::ServeOptions server_options(const std::string& name, int workers) {
  serve::ServeOptions options;
  const std::string root = test_dir(name);
  options.endpoint = serve::parse_endpoint("unix:" + root + "/s.sock");
  options.workers = workers;
  options.scratch_dir = root + "/scratch";
  return options;
}

TEST(JobServer, ServedRunMatchesDirectRunBitIdentically) {
  serve::JobServer server(server_options("serve_parity", 2));
  server.start();

  const Circuit circuit = small_supremacy(3, 3, 8, 5);
  serve::JobSpec spec;
  spec.local = 7;
  spec.samples = 8;

  serve::ServeClient client(server.endpoint());
  const serve::SubmitOutcome outcome =
      client.submit(spec, circuit_text(circuit));
  ASSERT_TRUE(outcome.accepted) << outcome.reject_line;
  ASSERT_TRUE(outcome.done) << outcome.error;
  EXPECT_EQ(outcome.result_lines, direct_lines(circuit, spec));
  server.stop();
}

TEST(JobServer, Fp32ServedRunMatchesDirectRun) {
  serve::JobServer server(server_options("serve_fp32", 1));
  server.start();

  const Circuit circuit = small_supremacy(3, 3, 6, 11);
  serve::JobSpec spec;
  spec.engine = "fp32";
  spec.local = 7;
  spec.uniform_init = true;

  serve::ServeClient client(server.endpoint());
  const serve::SubmitOutcome outcome =
      client.submit(spec, circuit_text(circuit));
  ASSERT_TRUE(outcome.accepted) << outcome.reject_line;
  ASSERT_TRUE(outcome.done) << outcome.error;
  EXPECT_EQ(outcome.result_lines, direct_lines(circuit, spec));
  server.stop();
}

TEST(JobServer, RepeatedShapeHitsScheduleCache) {
  serve::JobServer server(server_options("serve_cache", 1));
  server.start();

  const Circuit circuit = small_supremacy(3, 3, 8, 5);
  serve::JobSpec spec;
  spec.local = 7;
  const std::string text = circuit_text(circuit);

  serve::ServeClient client(server.endpoint());
  const serve::SubmitOutcome first = client.submit(spec, text);
  ASSERT_TRUE(first.done) << first.error;
  EXPECT_FALSE(first.cache_hit);
  const serve::SubmitOutcome second = client.submit(spec, text);
  ASSERT_TRUE(second.done) << second.error;
  EXPECT_TRUE(second.cache_hit);
  // Identical spec + circuit => identical digest and identical results.
  EXPECT_NE(first.queued_line.find("cache=miss"), std::string::npos);
  EXPECT_NE(second.queued_line.find("cache=hit"), std::string::npos);
  EXPECT_EQ(first.result_lines, second.result_lines);

  // A rotation-angle tweak must miss: same shape, different physics.
  Circuit tweaked = circuit;
  tweaked.rz(0, 1e-9);
  const serve::SubmitOutcome third =
      client.submit(spec, circuit_text(tweaked));
  ASSERT_TRUE(third.done) << third.error;
  EXPECT_FALSE(third.cache_hit);
  // And a different local-qubit count must miss even on the same text.
  serve::JobSpec narrower = spec;
  narrower.local = 6;
  const serve::SubmitOutcome fourth = client.submit(narrower, text);
  ASSERT_TRUE(fourth.done) << fourth.error;
  EXPECT_FALSE(fourth.cache_hit);

  const serve::JobServer::Stats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 3u);
  server.stop();
}

TEST(JobServer, ConcurrentTenantsGetIndependentResults) {
  serve::JobServer server(server_options("serve_concurrent", 2));
  server.start();

  const Circuit a = small_supremacy(3, 3, 8, 5);
  const Circuit b = small_supremacy(3, 3, 8, 21);
  serve::JobSpec spec;
  spec.local = 7;
  spec.samples = 4;

  serve::SubmitOutcome out_a;
  serve::SubmitOutcome out_b;
  std::thread ta([&] {
    serve::ServeClient client(server.endpoint());
    out_a = client.submit(spec, circuit_text(a));
  });
  std::thread tb([&] {
    serve::ServeClient client(server.endpoint());
    out_b = client.submit(spec, circuit_text(b));
  });
  ta.join();
  tb.join();

  ASSERT_TRUE(out_a.done) << out_a.error;
  ASSERT_TRUE(out_b.done) << out_b.error;
  EXPECT_EQ(out_a.result_lines, direct_lines(a, spec));
  EXPECT_EQ(out_b.result_lines, direct_lines(b, spec));
  EXPECT_NE(out_a.result_lines[0], out_b.result_lines[0]);
  server.stop();
}

TEST(JobServer, PreemptsBatchForInteractiveAndResumesBitIdentically) {
  // One worker: a stalling batch job must yield to an interactive
  // arrival at its next stage boundary, then resume from its checkpoint
  // and still produce the exact result of an undisturbed run.
  serve::JobServer server(server_options("serve_preempt", 1));
  server.start();

  const Circuit batch_circuit = small_supremacy(3, 4, 16, 9);
  serve::JobSpec batch_spec;
  batch_spec.local = 10;
  batch_spec.samples = 4;
  batch_spec.priority = serve::JobSpec::Priority::kBatch;
  batch_spec.stall_ms = 600;

  std::atomic<int> batch_stage{0};
  serve::SubmitOutcome batch_out;
  std::thread batch_thread([&] {
    serve::ServeClient client(server.endpoint());
    batch_out = client.submit(
        batch_spec, circuit_text(batch_circuit),
        [&batch_stage](const std::string& status) {
          const std::size_t at = status.find("stage=");
          if (at != std::string::npos && status.find("state=running") !=
                                             std::string::npos) {
            batch_stage.store(std::atoi(status.c_str() + at + 6));
          }
        });
  });

  // Wait until the batch job is mid-run (inside a stage-boundary stall)
  // so a boundary is still ahead of it, then submit the interactive job.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (batch_stage.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(batch_stage.load(), 1) << "batch job never reported progress";

  const Circuit interactive_circuit = small_supremacy(3, 3, 8, 5);
  serve::JobSpec interactive_spec;
  interactive_spec.local = 7;
  interactive_spec.priority = serve::JobSpec::Priority::kInteractive;
  serve::ServeClient client(server.endpoint());
  const serve::SubmitOutcome interactive_out =
      client.submit(interactive_spec, circuit_text(interactive_circuit));
  ASSERT_TRUE(interactive_out.done) << interactive_out.error;
  EXPECT_EQ(interactive_out.result_lines,
            direct_lines(interactive_circuit, interactive_spec));

  batch_thread.join();
  ASSERT_TRUE(batch_out.done) << batch_out.error;
  EXPECT_EQ(batch_out.result_lines,
            direct_lines(batch_circuit, batch_spec));

  const serve::JobServer::Stats stats = server.stats();
  EXPECT_GE(stats.preemptions, 1u);
  EXPECT_GE(stats.resumes, 1u);
  server.stop();
}

TEST(JobServer, RejectsInadmissibleJobs) {
  serve::ServeOptions options = server_options("serve_reject", 1);
  options.max_job_bytes = 1 << 20;  // far below any statevector + bounce
  serve::JobServer server(options);
  server.start();

  const Circuit circuit = small_supremacy(3, 3, 6, 3);
  serve::ServeClient client(server.endpoint());

  serve::JobSpec spec;
  spec.local = 7;
  const serve::SubmitOutcome memory = client.submit(spec, circuit_text(circuit));
  EXPECT_FALSE(memory.accepted);
  EXPECT_NE(memory.reject_line.find("reason=memory"), std::string::npos);

  serve::JobSpec fp32_sampling;
  fp32_sampling.engine = "fp32";
  fp32_sampling.local = 7;
  fp32_sampling.samples = 2;
  const serve::SubmitOutcome samples =
      client.submit(fp32_sampling, circuit_text(circuit));
  EXPECT_FALSE(samples.accepted);
  EXPECT_NE(samples.reject_line.find("reason=samples"), std::string::npos);

  serve::JobSpec single;
  single.local = 9;  // == circuit width: not distributed
  const serve::SubmitOutcome local =
      client.submit(single, circuit_text(circuit));
  EXPECT_FALSE(local.accepted);
  EXPECT_NE(local.reject_line.find("reason=local"), std::string::npos);

  EXPECT_EQ(server.stats().rejected, 3u);
  server.stop();
}

TEST(JobServer, BadSubmitSpecKeepsChannelAligned) {
  // A SUBMIT whose spec fails to parse arrives with its circuit body
  // already in flight. The server must drain the body through END, emit
  // exactly ONE error, and keep the connection request/reply aligned —
  // the body lines must not be parsed as verbs.
  serve::JobServer server(server_options("serve_badspec", 1));
  server.start();

  serve::LineChannel channel(serve::connect_endpoint(server.endpoint()));
  ASSERT_TRUE(channel.write_line("SUBMIT v=1 engine=fp16"));
  const Circuit circuit = small_supremacy(3, 3, 6, 3);
  std::istringstream body(circuit_text(circuit));
  std::string line;
  while (std::getline(body, line)) {
    ASSERT_TRUE(channel.write_line(line));
  }
  ASSERT_TRUE(channel.write_line("END"));

  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(line.rfind("ERROR ", 0), 0u) << line;
  // Alignment check: the next reply answers the next request, not a
  // stale per-body-line error.
  ASSERT_TRUE(channel.write_line("PING"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(line, "PONG");

  // The same connection can still run a good submission end to end.
  ASSERT_TRUE(channel.write_line("SUBMIT v=1 local=7"));
  std::istringstream again(circuit_text(circuit));
  while (std::getline(again, line)) {
    ASSERT_TRUE(channel.write_line(line));
  }
  ASSERT_TRUE(channel.write_line("END"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(line.rfind("QUEUED ", 0), 0u) << line;
  server.stop();
}

TEST(JobServer, OversizedBodyIsRejectedAndDrained) {
  serve::ServeOptions options = server_options("serve_bigbody", 1);
  options.max_body_bytes = 256;
  serve::JobServer server(options);
  server.start();

  serve::LineChannel channel(serve::connect_endpoint(server.endpoint()));
  serve::JobSpec spec;
  spec.local = 3;
  ASSERT_TRUE(channel.write_line("SUBMIT " + spec.to_tokens()));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(channel.write_line("h 0"));  // well past the 256-byte cap
  }
  ASSERT_TRUE(channel.write_line("END"));

  std::string line;
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(line.rfind("REJECTED reason=body", 0), 0u) << line;
  ASSERT_TRUE(channel.write_line("PING"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(line, "PONG");
  EXPECT_EQ(server.stats().rejected, 1u);
  server.stop();
}

TEST(JobServer, ControlVerbsAndShutdownRequest) {
  serve::JobServer server(server_options("serve_verbs", 1));
  server.start();
  serve::ServeClient client(server.endpoint());
  EXPECT_TRUE(client.ping());
  const std::string stats = client.stats();
  EXPECT_EQ(stats.rfind("STATS ", 0), 0u);
  EXPECT_NE(stats.find("workers=1"), std::string::npos);
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_EQ(client.shutdown_server(), "OK shutting down");
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

TEST(JobServer, GracefulStopCheckpointsInFlightJob) {
  serve::ServeOptions options = server_options("serve_drain", 1);
  serve::JobServer server(options);
  server.start();

  const Circuit circuit = small_supremacy(3, 4, 16, 9);
  serve::JobSpec spec;
  spec.local = 10;
  spec.priority = serve::JobSpec::Priority::kBatch;
  spec.stall_ms = 600;

  std::atomic<int> stage{0};
  serve::SubmitOutcome outcome;
  std::thread submit_thread([&] {
    serve::ServeClient client(server.endpoint());
    outcome = client.submit(spec, circuit_text(circuit),
                            [&stage](const std::string& status) {
                              if (status.find("state=running") !=
                                  std::string::npos) {
                                stage.fetch_add(1);
                              }
                            });
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (stage.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(stage.load(), 1);

  server.stop();  // preempts the run at its next stage boundary
  submit_thread.join();
  EXPECT_FALSE(outcome.done);
  EXPECT_NE(outcome.error.find("shutdown"), std::string::npos);

  // The drain committed a verified, resumable generation.
  const auto snapshot =
      ckpt::CheckpointReader(options.scratch_dir + "/job-1").load_latest();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_GT(snapshot->manifest.cursor, 0u);
  EXPECT_NE(snapshot->manifest.schedule_crc, 0u);
}

}  // namespace
}  // namespace quasar
