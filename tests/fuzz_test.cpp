/// \file fuzz_test.cpp
/// \brief Differential fuzz harness (check/fuzz.hpp): clean engines agree
/// across every configuration, and a deliberately injected kernel bug is
/// caught, minimized, and rendered as a reproducer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "check/fuzz.hpp"
#include "check/invariant.hpp"
#include "circuit/io.hpp"
#include "core/parse.hpp"

namespace quasar {
namespace {

/// Seed count for the agreement sweep. CI's dedicated fuzz job raises
/// this via QUASAR_FUZZ_SEEDS; the tier-1 default keeps ctest fast.
int smoke_seeds() {
  const char* env = std::getenv("QUASAR_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return 25;
  return parse_int_in_range(env, 1, 1000000, "QUASAR_FUZZ_SEEDS");
}

/// The injected bug of the harness self-test: every T becomes Tdg in the
/// circuit the plain Simulator sees — the classic conjugated-phase kernel
/// bug (sign flip in the exp(i pi/4) entry).
void flip_t_to_tdg(Circuit& circuit) {
  Circuit replaced(circuit.num_qubits());
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    const GateOp& op = circuit.op(i);
    if (op.kind == GateKind::kT) {
      replaced.append_standard(GateKind::kTdg, op.qubits, op.cycle);
    } else {
      replaced.append_op(op);
    }
  }
  circuit = replaced;
}

TEST(Fuzz, GeneratorIsDeterministicInSeed) {
  const check::FuzzOptions options;
  const Circuit a = check::random_circuit(42, options);
  const Circuit b = check::random_circuit(42, options);
  EXPECT_EQ(circuit_to_string(a), circuit_to_string(b));
  const Circuit c = check::random_circuit(43, options);
  EXPECT_NE(circuit_to_string(a), circuit_to_string(c));
}

TEST(Fuzz, GeneratedCircuitsRoundTripThroughText) {
  // Reproducers are circuit text; whatever the generator emits must
  // survive serialization exactly, custom U<k> matrices included.
  const check::FuzzOptions options;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Circuit circuit = check::random_circuit(seed, options);
    const std::string text = circuit_to_string(circuit);
    EXPECT_EQ(circuit_to_string(circuit_from_string(text)), text)
        << "seed " << seed;
  }
}

TEST(Fuzz, AllEnginesAgreeAcrossSeeds) {
  check::FuzzOptions options;
  options.minimize = false;  // nothing to minimize on the happy path
  const check::FuzzReport report =
      check::run_fuzz(1, smoke_seeds(), options);
  EXPECT_EQ(report.seeds_run, smoke_seeds());
  for (const check::Mismatch& m : report.mismatches) {
    ADD_FAILURE() << check::format_reproducer(m);
  }
}

TEST(Fuzz, AllEnginesAgreeWithValidationOn) {
  // The guards and the differential comparison must not fight: a clean
  // run under QUASAR_VALIDATE=1 semantics produces zero mismatches (a
  // guard trip would surface as an "engine threw" mismatch).
  check::set_enabled(true);
  check::FuzzOptions options;
  options.minimize = false;
  options.max_gates = 24;  // validation sweeps make each seed pricier
  const check::FuzzReport report = check::run_fuzz(1000, 8, options);
  check::reset_enabled();
  EXPECT_EQ(report.seeds_run, 8);
  for (const check::Mismatch& m : report.mismatches) {
    ADD_FAILURE() << check::format_reproducer(m);
  }
}

TEST(Fuzz, InjectedSignFlipIsCaughtAndMinimized) {
  // Hand the harness a buggy "engine": the Simulator path conjugates
  // every T. A circuit that creates superposition and applies T must be
  // flagged, and the minimizer must shrink it while keeping it failing.
  check::FuzzOptions options;
  options.corrupt_simulator = flip_t_to_tdg;
  options.samples = 0;  // isolate the state comparison

  Circuit circuit(5);
  circuit.h(2);
  circuit.x(0);       // junk the minimizer should discard
  circuit.cz(0, 4);   // more junk (no superposition on 0/4 yet)
  circuit.t(2);       // the bug site
  circuit.h(4);
  circuit.swap(1, 3); // junk
  circuit.rz(4, 0.4);

  const auto mismatch = check::run_differential(circuit, 77, options);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(mismatch->engine_b, "simulator");

  const Circuit minimized = check::minimize_circuit(circuit, 77, options);
  EXPECT_LT(minimized.num_gates(), circuit.num_gates());
  EXPECT_LE(minimized.num_gates(), 2u);  // H q; T q is the minimal core
  // The minimized circuit still reproduces the failure...
  EXPECT_TRUE(check::run_differential(minimized, 77, options).has_value());
  // ...and without the injected bug it is clean (the harness found the
  // bug, not a tolerance artifact).
  check::FuzzOptions clean = options;
  clean.corrupt_simulator = nullptr;
  EXPECT_FALSE(check::run_differential(minimized, 77, clean).has_value());
}

TEST(Fuzz, InjectedBugSurfacesThroughTheFullLoop) {
  // End-to-end: run_fuzz over random seeds with the buggy engine, expect
  // at least one mismatch, and expect every reported circuit to be small
  // (minimization ran) and self-contained in the reproducer text.
  check::FuzzOptions options;
  options.corrupt_simulator = flip_t_to_tdg;
  options.min_qubits = 4;
  options.max_qubits = 6;
  options.min_gates = 12;
  options.max_gates = 20;
  options.samples = 0;
  options.fp32 = false;  // the bug is in the fp64 path; keep the loop fast

  std::ostringstream log;
  const check::FuzzReport report = check::run_fuzz(1, 12, options, &log);
  ASSERT_FALSE(report.mismatches.empty())
      << "12 seeds of 12-20 gates each produced no T on a superposed "
         "qubit; generator biases regressed?";
  for (const check::Mismatch& m : report.mismatches) {
    EXPECT_EQ(m.engine_b, "simulator");
    EXPECT_LE(m.circuit.num_gates(), 4u) << "minimization regressed";
    const std::string repro = check::format_reproducer(m);
    EXPECT_NE(repro.find("seed:"), std::string::npos);
    EXPECT_NE(repro.find("qubits"), std::string::npos);
    EXPECT_NE(repro.find("simulator"), std::string::npos);
  }
  EXPECT_NE(log.str().find("mismatch"), std::string::npos);
}

TEST(Fuzz, EngineThrowBecomesMismatchNotCrash) {
  // An engine that dies (here: a guard trip from a poisoned circuit) is
  // reported through the same reproducer machinery instead of aborting
  // the whole fuzz run.
  check::FuzzOptions options;
  options.samples = 0;
  options.fp32 = false;
  options.corrupt_simulator = [](Circuit& circuit) {
    Circuit replaced(circuit.num_qubits());
    // Scale the first gate's matrix: no longer unitary, norm drifts.
    const GateOp& op = circuit.op(0);
    GateMatrix scaled = *op.matrix;
    scaled.scale(Amplitude(0.5, 0.0));
    // append_custom validates unitarity, so splice the op manually via
    // append(); this mimics an in-engine matrix corruption.
    replaced.append(GateKind::kCustom, op.qubits,
                    std::make_shared<const GateMatrix>(std::move(scaled)));
    for (std::size_t i = 1; i < circuit.num_gates(); ++i) {
      replaced.append_op(circuit.op(i));
    }
    circuit = replaced;
  };

  Circuit circuit(4);
  circuit.h(0);
  circuit.h(1);

  check::set_enabled(true);
  const auto mismatch = check::run_differential(circuit, 5, options);
  check::reset_enabled();
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(mismatch->engine_b, "simulator");
  // Either the guard threw ("engine threw: ...") or, with guards off,
  // the state comparison catches the halved amplitudes — with set_enabled
  // above it must be the guard.
  EXPECT_NE(mismatch->detail.find("engine threw"), std::string::npos);
}

}  // namespace
}  // namespace quasar
