/// \file quasar_cli.cpp
/// \brief Command-line front end: generate, inspect, schedule, and run
/// circuits from the text format (circuit/io.hpp).
///
///   quasar_cli generate --rows 4 --cols 4 --depth 20 [--seed S]
///                       [--no-initial-h] [--strip] > circuit.txt
///   quasar_cli info circuit.txt
///   quasar_cli schedule circuit.txt --local 12 [--kmax 5]
///                       [--mode worst|full|none] [--render]
///   quasar_cli run circuit.txt [--local L] [--samples N] [--seed S]
///                       [--uniform-init] [--fp32] [--digest]
///
/// `run --digest` prints exactly the four canonical result lines
/// (serve/fingerprint.hpp) of a distributed run instead of the human
/// summary — the reference output the job server must match line for
/// line (the serve-smoke CI job diffs the two).
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "circuit/analysis.hpp"
#include "circuit/io.hpp"
#include "circuit/supremacy.hpp"
#include "core/parse.hpp"
#include "fp32/distributed_f32.hpp"
#include "sched/schedule_io.hpp"
#include "core/timing.hpp"
#include "fp32/simulator_f32.hpp"
#include "runtime/distributed.hpp"
#include "sched/report.hpp"
#include "serve/fingerprint.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"

namespace {

using namespace quasar;

/// Minimal flag parser: positional args plus --key [value] pairs.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    // Strict parse: "--local 12x" or "--seed banana" must fail with a
    // quasar::Error naming the flag, not escape as std::invalid_argument
    // or silently truncate.
    return parse_int(it->second, "option --" + key);
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

Circuit load_circuit(const std::string& path) {
  std::ifstream in(path);
  QUASAR_CHECK(in.good(), "cannot open circuit file: " + path);
  return read_circuit(in);
}

SpecializationMode parse_mode(const std::string& mode) {
  if (mode == "worst") return SpecializationMode::kWorstCase;
  if (mode == "full") return SpecializationMode::kFull;
  if (mode == "none") return SpecializationMode::kNone;
  throw Error("unknown specialization mode: " + mode);
}

int cmd_generate(const Args& args) {
  SupremacyOptions options;
  options.rows = args.get_int("rows", 4);
  options.cols = args.get_int("cols", 4);
  options.depth = args.get_int("depth", 20);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  options.initial_hadamards = !args.has("no-initial-h");
  Circuit circuit = make_supremacy_circuit(options);
  if (args.has("strip")) circuit = strip_trailing_diagonals(circuit);
  write_circuit(std::cout, circuit);
  return 0;
}

int cmd_info(const Args& args) {
  QUASAR_CHECK(!args.positional().empty(), "info: missing circuit file");
  const Circuit circuit = load_circuit(args.positional()[0]);
  const CircuitStats stats = analyze(circuit);
  std::cout << "qubits:        " << circuit.num_qubits() << "\n"
            << "gates:         " << stats.num_gates << "\n"
            << "  single-qubit " << stats.num_single_qubit << "\n"
            << "  two-qubit    " << stats.num_two_qubit << "\n"
            << "  diagonal     " << stats.num_diagonal << "\n"
            << "layered depth: " << stats.depth << "\n";
  for (const auto& [name, count] : stats.by_name) {
    std::cout << "  " << name << " x " << count << "\n";
  }
  return 0;
}

int cmd_schedule(const Args& args) {
  QUASAR_CHECK(!args.positional().empty(), "schedule: missing circuit file");
  const Circuit circuit = load_circuit(args.positional()[0]);
  ScheduleOptions options;
  options.num_local = args.get_int("local", circuit.num_qubits());
  options.kmax = args.get_int("kmax", 5);
  options.specialization = parse_mode(args.get("mode", "worst"));
  options.qubit_mapping = args.has("mapping");
  options.build_matrices = false;
  Timer timer;
  options.build_matrices = args.has("save");  // matrices only if persisted
  const Schedule schedule = make_schedule(circuit, options);
  std::cout << "scheduled in " << timer.seconds() << " s\n"
            << schedule_summary(circuit, schedule);
  if (args.has("save")) {
    std::ofstream out(args.get("save", ""));
    QUASAR_CHECK(out.good(), "cannot open schedule output file");
    write_schedule(out, schedule);
    std::cout << "schedule written to " << args.get("save", "") << "\n";
  }
  if (args.has("render")) {
    for (std::size_t s = 0; s < schedule.stages.size(); ++s) {
      std::cout << render_stage(circuit, schedule, s);
    }
  }
  return 0;
}

/// The four deterministic lines of `run --digest` (identical to a job
/// server RESULT payload for the same spec).
template <typename Sim>
void print_digest(const Sim& sim, const std::vector<Index>& outcomes) {
  std::cout << serve::format_fingerprint_line(serve::state_fingerprint(sim))
            << "\n"
            << serve::format_norm_line(sim.norm_squared()) << "\n"
            << serve::format_entropy_line(sim.entropy()) << "\n"
            << serve::format_samples_line(outcomes) << "\n";
}

int cmd_run_digest(const Args& args, const Circuit& circuit) {
  const int n = circuit.num_qubits();
  const int samples = args.get_int("samples", 0);
  const int local = args.get_int("local", n - 2);
  QUASAR_CHECK(local >= 1 && local < n,
               "run --digest needs 1 <= local < qubits (distributed only)");
  ScheduleOptions options;
  options.num_local = local;
  options.kmax = args.get_int("kmax", 5);
  options.specialization = parse_mode(args.get("mode", "worst"));
  const Schedule schedule = make_schedule(circuit, options);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2026)));

  if (args.has("fp32")) {
    QUASAR_CHECK(samples == 0,
                 "run --digest --fp32 has no sampler; drop --samples");
    DistributedSimulatorF sim(n, local);
    if (args.has("uniform-init")) {
      sim.init_uniform();
    } else {
      sim.init_basis(0);
    }
    sim.run(circuit, schedule);
    print_digest(sim, {});
    return 0;
  }
  DistributedSimulator sim(n, local);
  if (args.has("uniform-init")) {
    sim.init_uniform();
  } else {
    sim.init_basis(0);
  }
  sim.run(circuit, schedule);
  print_digest(sim, samples > 0 ? sim.sample(samples, rng)
                                : std::vector<Index>{});
  return 0;
}

int cmd_run(const Args& args) {
  QUASAR_CHECK(!args.positional().empty(), "run: missing circuit file");
  const Circuit circuit = load_circuit(args.positional()[0]);
  const int n = circuit.num_qubits();
  QUASAR_CHECK(n <= 28, "run: circuit too wide for this machine");
  if (args.has("digest")) return cmd_run_digest(args, circuit);
  const int samples = args.get_int("samples", 0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2026)));

  if (args.has("fp32")) {
    QUASAR_CHECK(!args.has("local"),
                 "run: --fp32 is single-address-space only");
    StateVectorF state(n);
    if (args.has("uniform-init")) state.set_uniform_superposition();
    SimulatorF simulator(state);
    Timer timer;
    simulator.run(circuit);
    std::cout << "fp32 run: " << timer.seconds() << " s, norm^2 "
              << state.norm_squared() << ", entropy " << state.entropy()
              << "\n";
    return 0;
  }

  const int local = args.get_int("local", n);
  if (local < n) {
    StorageOptions storage;
    if (args.has("disk")) storage.medium = StorageMedium::kDisk;
    DistributedSimulator sim(n, local, {}, storage);
    if (args.has("uniform-init")) {
      sim.init_uniform();
    } else {
      sim.init_basis(0);
    }
    Timer timer;
    if (args.has("schedule")) {
      std::ifstream in(args.get("schedule", ""));
      QUASAR_CHECK(in.good(), "cannot open schedule file");
      sim.run(circuit, read_schedule(in, circuit));
    } else {
      ScheduleOptions options;
      options.num_local = local;
      options.kmax = args.get_int("kmax", 5);
      options.specialization = parse_mode(args.get("mode", "worst"));
      sim.run(circuit, options);
    }
    std::cout << "distributed run (" << (1 << (n - local)) << " ranks): "
              << timer.seconds() << " s, norm^2 " << sim.norm_squared()
              << ", entropy " << sim.entropy() << "\n";
    const CommStats& stats = sim.stats();
    std::cout << "comm: " << stats.alltoalls << " all-to-alls, "
              << stats.bytes_sent_per_rank / 1e6 << " MB/rank\n";
    if (samples > 0) {
      const StateVector state = sim.gather();
      for (Index s : sample_outcomes(state, samples, rng)) {
        std::cout << s << "\n";
      }
    }
    return 0;
  }

  StateVector state(n);
  if (args.has("uniform-init")) state.set_uniform_superposition();
  Simulator simulator(state);
  Timer timer;
  simulator.run(circuit);
  std::cout << "run: " << timer.seconds() << " s, norm^2 "
            << state.norm_squared() << ", entropy " << entropy(state)
            << " (Porter-Thomas: " << porter_thomas_entropy(n) << ")\n";
  for (Index s : sample_outcomes(state, samples, rng)) {
    std::cout << s << "\n";
  }
  return 0;
}

int usage() {
  std::cerr <<
      "usage: quasar_cli <generate|info|schedule|run> [args]\n"
      "  generate --rows R --cols C --depth D [--seed S] [--no-initial-h]"
      " [--strip]\n"
      "  info <circuit.txt>\n"
      "  schedule <circuit.txt> --local L [--kmax K] [--mode worst|full|"
      "none] [--mapping] [--render] [--save plan.txt]\n"
      "  run <circuit.txt> [--local L] [--schedule plan.txt] [--samples N]"
      " [--seed S] [--uniform-init] [--fp32] [--disk] [--digest]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Args args(argc, argv);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "info") return cmd_info(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "run") return cmd_run(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
