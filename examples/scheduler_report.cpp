/// \file scheduler_report.cpp
/// \brief Renders the circuit constructions of Fig. 1 and the scheduler
/// output of Fig. 4 as ASCII art.
///
///   ./scheduler_report [rows cols depth num_local]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "sched/report.hpp"

namespace {

/// Prints one CZ pattern as a grid diagram (Fig. 1 style).
void print_pattern(int pattern, int rows, int cols) {
  using namespace quasar;
  const auto bonds = supremacy_cz_pattern(pattern, rows, cols);
  std::vector<std::string> canvas(2 * rows - 1,
                                  std::string(2 * cols - 1, ' '));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) canvas[2 * r][2 * c] = 'o';
  }
  for (const Bond& b : bonds) {
    const int ra = b.a / cols, ca = b.a % cols;
    const int rb = b.b / cols, cb = b.b % cols;
    if (ra == rb) {
      canvas[2 * ra][ca + cb] = '-';
    } else {
      canvas[ra + rb][2 * ca] = '|';
    }
  }
  std::printf("  pattern %d (cycle %d, %d+8k):\n", pattern + 1, pattern + 1,
              pattern + 1);
  for (const auto& line : canvas) std::printf("    %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quasar;
  SupremacyOptions options;
  options.seed = 0;
  int num_local = 0;
  // Per-position guards: a single "rows" argument is honored instead of
  // being silently dropped (the old guard read argv[1] only when a
  // second argument existed).
  try {
    options.rows = argc > 1 ? parse_int_in_range(argv[1], 1, 64, "rows") : 4;
    options.cols = argc > 2 ? parse_int_in_range(argv[2], 1, 64, "cols") : 4;
    options.depth =
        argc > 3 ? parse_int_in_range(argv[3], 1, 10000, "depth") : 16;
    const int qubits = options.rows * options.cols;
    num_local = argc > 4
                    ? parse_int_in_range(argv[4], 1, qubits, "num_local")
                    : (qubits * 3) / 4;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fprintf(stderr, "usage: %s [rows [cols [depth [num_local]]]]\n",
                 argv[0]);
    return 1;
  }
  const int n = options.rows * options.cols;
  if (argc > 5 || num_local < 1 || num_local > n) {
    std::fprintf(stderr, "usage: %s [rows [cols [depth [num_local]]]]\n",
                 argv[0]);
    return 1;
  }

  std::printf("=== Fig. 1: the eight CZ patterns on a %dx%d grid ===\n\n",
              options.rows, options.cols);
  for (int p = 0; p < 8; ++p) print_pattern(p, options.rows, options.cols);

  const Circuit circuit = make_supremacy_circuit(options);
  const CircuitStats stats = analyze(circuit);
  std::printf("\n=== circuit statistics ===\n");
  std::printf("gates: %zu  (1-qubit: %zu, 2-qubit: %zu, diagonal: %zu), "
              "layered depth %d\n",
              stats.num_gates, stats.num_single_qubit, stats.num_two_qubit,
              stats.num_diagonal, stats.depth);
  for (const auto& [name, count] : stats.by_name) {
    std::printf("  %-6s x %zu\n", name.c_str(), count);
  }

  std::printf("\n=== Sec. 3.6 scheduling (%d local of %d qubits) ===\n\n",
              num_local, n);
  ScheduleOptions sched;
  sched.num_local = num_local;
  sched.kmax = 4;
  sched.build_matrices = false;
  const Schedule schedule = make_schedule(circuit, sched);
  std::printf("%s\n", schedule_summary(circuit, schedule).c_str());

  std::printf("=== Fig. 4: stage/cluster rendering (stage 0) ===\n\n");
  std::printf("%s", render_stage(circuit, schedule, 0).c_str());
  return 0;
}
