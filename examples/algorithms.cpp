/// \file algorithms.cpp
/// \brief Real quantum algorithms on the public API: QFT, phase
/// estimation, and Grover search.
///
/// The paper notes that supremacy circuits are the *worst case* for its
/// optimizations, whereas "actual quantum algorithms, where interactions
/// remain local over longer periods of time" (Sec. 4.1.2) benefit even
/// more — this example provides such workloads, and prints how well the
/// scheduler clusters them compared to a supremacy circuit of the same
/// size.
#include <cstdio>
#include <numbers>

#include "circuit/supremacy.hpp"
#include "sched/schedule.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"

namespace {

using namespace quasar;

/// Appends the quantum Fourier transform on qubits [0, n).
void append_qft(Circuit& c, int n) {
  for (int q = n - 1; q >= 0; --q) {
    c.h(q);
    for (int j = q - 1; j >= 0; --j) {
      c.cphase(j, q, std::numbers::pi / (1 << (q - j)));
    }
  }
}

/// Grover diffusion + oracle for a single marked item, on n qubits.
void append_grover_iteration(Circuit& c, int n, Index marked) {
  // Oracle: flip the phase of |marked> using X-conjugated controlled-Z.
  for (int q = 0; q < n; ++q) {
    if (!((marked >> q) & 1)) c.x(q);
  }
  // Multi-controlled Z as a custom diagonal gate on all qubits would be a
  // 2^n matrix; instead build it as a (n<=6)-qubit custom diagonal.
  GateMatrix mcz = GateMatrix::identity(n);
  mcz.at(mcz.dim() - 1, mcz.dim() - 1) = -1.0;
  std::vector<Qubit> all(n);
  for (int q = 0; q < n; ++q) all[q] = q;
  c.append_custom(all, mcz);
  for (int q = 0; q < n; ++q) {
    if (!((marked >> q) & 1)) c.x(q);
  }
  // Diffusion: H X (MCZ) X H on all qubits.
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) c.x(q);
  c.append_custom(all, mcz);
  for (int q = 0; q < n; ++q) c.x(q);
  for (int q = 0; q < n; ++q) c.h(q);
}

void demo_qft() {
  const int n = 10;
  // QFT of a period-8 comb has peaks at multiples of 2^n/8.
  StateVector state(n);
  const int period = 8;
  const int count = static_cast<int>(state.size()) / period;
  for (Index i = 0; i < state.size(); ++i) {
    state[i] = (i % period == 0)
                   ? Amplitude{1.0 / std::sqrt(count), 0.0}
                   : Amplitude{0.0, 0.0};
  }
  Circuit qft(n);
  append_qft(qft, n);
  Simulator sim(state);
  sim.run(qft);
  std::printf("QFT of a period-%d comb on %d qubits: peaks at multiples of "
              "%d (printed in the QFT's bit-reversed output order)\n",
              period, n, static_cast<int>(state.size()) / period);
  for (Index i = 0; i < state.size(); ++i) {
    const Real p = state.probability(i);
    if (p > 0.01) {
      std::printf("  |%4llu> : %.4f\n", (unsigned long long)i, p);
    }
  }
}

void demo_grover() {
  const int n = 6;
  const Index marked = 42;
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.h(q);
  // ~ pi/4 sqrt(2^n) iterations.
  const int iterations = 6;
  for (int i = 0; i < iterations; ++i) append_grover_iteration(c, n, marked);

  StateVector state(n);
  Simulator sim(state);
  sim.run(c);
  std::printf("\nGrover search for |%llu> on %d qubits after %d iterations: "
              "P = %.4f  (random guess: %.4f)\n",
              (unsigned long long)marked, n, iterations,
              state.probability(marked), 1.0 / state.size());
}

void demo_scheduling_contrast() {
  // "Actual quantum algorithms" cluster better than supremacy circuits.
  const int n = 16;
  Circuit qft(n);
  append_qft(qft, n);

  SupremacyOptions so;
  so.rows = 4;
  so.cols = 4;
  so.depth = 25;
  const Circuit supremacy = make_supremacy_circuit(so);

  ScheduleOptions o;
  o.num_local = 12;
  o.kmax = 5;
  o.build_matrices = false;
  const Schedule s_qft = make_schedule(qft, o);
  const Schedule s_sup = make_schedule(supremacy, o);
  std::printf("\nscheduler contrast at %d qubits (%d local, kmax=%d):\n", n,
              o.num_local, o.kmax);
  std::printf("  QFT:       %4zu gates -> %3zu clusters, %d swaps "
              "(%.1f gates/cluster)\n",
              qft.num_gates(), s_qft.num_clusters(), s_qft.num_swaps(),
              static_cast<double>(qft.num_gates()) /
                  static_cast<double>(s_qft.num_clusters()));
  std::printf("  supremacy: %4zu gates -> %3zu clusters, %d swaps "
              "(%.1f gates/cluster)\n",
              supremacy.num_gates(), s_sup.num_clusters(), s_sup.num_swaps(),
              static_cast<double>(supremacy.num_gates()) /
                  static_cast<double>(s_sup.num_clusters()));
}

}  // namespace

int main() {
  demo_qft();
  demo_grover();
  demo_scheduling_contrast();
  return 0;
}
