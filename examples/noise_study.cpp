/// \file noise_study.cpp
/// \brief Noise benchmarking study — the calibration/validation use case
/// the paper's introduction motivates.
///
/// Runs a supremacy circuit under increasing depolarizing noise and
/// reports (a) state fidelity to the ideal run and (b) the
/// cross-entropy-benchmarking statistic E[2^n p_ideal(sample)], which is
/// what a real device experiment can measure: it decays from 2 (ideal
/// Porter–Thomas sampling) towards 1 (fully depolarized) linearly in the
/// circuit fidelity.
#include <cstdio>

#include "circuit/supremacy.hpp"
#include "core/rng.hpp"
#include "simulator/measure.hpp"
#include "simulator/noise.hpp"
#include "simulator/observable.hpp"
#include "simulator/simulator.hpp"

int main() {
  using namespace quasar;

  SupremacyOptions options;
  options.rows = 4;
  options.cols = 3;
  options.depth = 20;
  options.seed = 7;
  const Circuit circuit = make_supremacy_circuit(options);
  const int n = options.rows * options.cols;

  StateVector ideal(n);
  Simulator sim(ideal);
  sim.run(circuit);
  std::printf("workload: %dx%d depth-%d supremacy circuit (%zu gates)\n",
              options.rows, options.cols, options.depth,
              circuit.num_gates());
  std::printf("ideal entropy %.4f (Porter-Thomas %.4f)\n\n",
              entropy(ideal), porter_thomas_entropy(n));

  std::printf("%10s %12s %12s %16s\n", "p/gate", "fidelity",
              "pred.(1-p)^G", "xeb E[2^n p]");
  Rng rng(1);
  // Total touched-qubit count = sum of gate arities.
  std::size_t touched = 0;
  for (const GateOp& op : circuit.ops()) touched += op.qubits.size();

  for (double p : {0.0, 0.001, 0.003, 0.01, 0.03}) {
    NoiseModel noise;
    noise.depolarizing_per_gate = p;
    const int trajectories = 12;
    Real mean_fidelity = 0.0;
    Real mean_xeb = 0.0;
    for (int t = 0; t < trajectories; ++t) {
      StateVector noisy(n);
      run_noisy_trajectory(noisy, circuit, noise, rng);
      mean_fidelity += fidelity(ideal, noisy);
      // A device experiment samples from the *noisy* distribution and
      // scores against the *ideal* probabilities.
      const auto samples = sample_outcomes(noisy, 200, rng);
      Real xeb = 0.0;
      for (Index s : samples) {
        xeb += static_cast<Real>(ideal.size()) * ideal.probability(s);
      }
      mean_xeb += xeb / static_cast<Real>(samples.size());
    }
    mean_fidelity /= trajectories;
    mean_xeb /= trajectories;
    const Real predicted =
        std::pow(1.0 - p, static_cast<double>(touched));
    std::printf("%10.4f %12.4f %12.4f %16.4f\n", p, mean_fidelity,
                predicted, mean_xeb);
  }
  std::printf("\n(the xeb column decays from ~2 toward 1 with the circuit "
              "fidelity — the signal Google's supremacy benchmarking "
              "extracts from hardware, and exactly what a classical "
              "simulation at 45 qubits provides the reference values "
              "for)\n");
  return 0;
}
