/// \file supremacy_entropy.cpp
/// \brief The paper's flagship workload at workstation scale.
///
/// Generates a quantum-supremacy random circuit (Fig. 1), schedules it
/// (Sec. 3.6), executes it on a virtual multi-rank cluster with
/// global-to-local swaps (Sec. 3.4/3.5), and computes the entropy of the
/// output distribution — the same quantity the paper's 36-qubit Edison
/// run reports (Sec. 4.2.2) — comparing it against the Porter–Thomas
/// prediction. Finally it extrapolates the run to Cori II scale with the
/// calibrated performance model.
///
///   ./supremacy_entropy [rows cols depth [num_local]]
#include <cstdio>
#include <cstdlib>

#include "circuit/analysis.hpp"
#include "circuit/supremacy.hpp"
#include "core/parse.hpp"
#include "core/timing.hpp"
#include "perfmodel/run_model.hpp"
#include "runtime/distributed.hpp"
#include "sched/report.hpp"
#include "simulator/measure.hpp"

int main(int argc, char** argv) {
  using namespace quasar;
  SupremacyOptions options;
  options.seed = 1;
  options.initial_hadamards = false;  // Sec. 3.6: start from the uniform state
  int num_local = 0;
  // Each argument guards on its own position: ./supremacy_entropy 6 also
  // works (it used to be silently ignored — rows was read only once a
  // second argument was present).
  try {
    options.rows = argc > 1 ? parse_int_in_range(argv[1], 1, 26, "rows") : 5;
    options.cols = argc > 2 ? parse_int_in_range(argv[2], 1, 26, "cols") : 4;
    options.depth =
        argc > 3 ? parse_int_in_range(argv[3], 1, 10000, "depth") : 25;
    const int qubits = options.rows * options.cols;
    num_local = argc > 4
                    ? parse_int_in_range(argv[4], 1, qubits, "num_local")
                    : qubits - 4;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fprintf(stderr, "usage: %s [rows [cols [depth [num_local]]]]\n",
                 argv[0]);
    return 1;
  }
  const int n = options.rows * options.cols;
  if (argc > 5 || n > 26 || num_local < 1 || num_local > n ||
      n - num_local > num_local) {
    std::fprintf(stderr,
                 "usage: %s [rows [cols [depth [num_local]]]]  "
                 "(rows*cols <= 26, g <= l)\n",
                 argv[0]);
    return 1;
  }

  const Circuit raw = make_supremacy_circuit(options);
  const Circuit circuit = strip_trailing_diagonals(raw);
  std::printf(
      "supremacy circuit: %dx%d grid (%d qubits), depth %d, %zu gates "
      "(%zu after dropping trailing diagonals)\n",
      options.rows, options.cols, n, options.depth, raw.num_gates(),
      circuit.num_gates());

  ScheduleOptions sched;
  sched.num_local = num_local;
  sched.kmax = 5;
  sched.specialization = SpecializationMode::kWorstCase;
  Timer sched_timer;
  const Schedule schedule = make_schedule(circuit, sched);
  std::printf("scheduling took %.3f s (the paper's pre-computation: 1-3 s)\n",
              sched_timer.seconds());
  std::printf("%s", schedule_summary(circuit, schedule).c_str());

  DistributedSimulator sim(n, num_local);
  sim.init_uniform();  // the skipped cycle-0 Hadamard layer
  Timer run_timer;
  sim.run(circuit, schedule);
  const double sim_seconds = run_timer.seconds();

  Timer entropy_timer;
  const Real s = sim.entropy();
  const Real s_pt = porter_thomas_entropy(n);
  const double entropy_seconds = entropy_timer.seconds();

  std::printf("\nsimulated %d ranks x %d local qubits in %.3f s; entropy "
              "reduction took %.3f s\n",
              1 << (n - num_local), num_local, sim_seconds, entropy_seconds);
  std::printf("entropy  = %.6f\n", s);
  std::printf("PorterTh = %.6f  (random-circuit prediction)\n", s_pt);
  std::printf("uniform  = %.6f  (upper bound n ln 2)\n",
              n * std::log(2.0));
  std::printf("norm^2   = %.12f\n", sim.norm_squared());

  const CommStats& stats = sim.stats();
  std::printf("\ncommunication: %llu all-to-all(s), %.1f MB sent per rank, "
              "%llu local swap sweeps, %llu rank renumberings\n",
              (unsigned long long)stats.alltoalls,
              stats.bytes_sent_per_rank / 1e6,
              (unsigned long long)stats.local_swap_sweeps,
              (unsigned long long)stats.rank_renumberings);

  // Extrapolate the same schedule shape to Cori II (Sec. 4.1.2).
  const int nodes = 1 << (n - num_local);
  const RunPrediction model = model_run(circuit, schedule, cori_knl_node(),
                                        aries_dragonfly(), nodes);
  std::printf("\nCori II model at %d KNL nodes: %.2f s total (%.0f%% comm), "
              "%.4f PFLOPS sustained\n",
              nodes, model.total_seconds(), 100.0 * model.comm_fraction(),
              model.sustained_pflops());
  return 0;
}
