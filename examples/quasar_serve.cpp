/// \file quasar_serve.cpp
/// \brief The job-server daemon (DESIGN.md §13).
///
///   quasar_serve --endpoint unix:/tmp/quasar.sock [--workers N]
///                [--cache N] [--interactive-s S] [--max-job-gb G]
///                [--scratch DIR] [--artifacts DIR]
///
/// Serves until SIGINT/SIGTERM (in-flight jobs checkpoint at their next
/// stage boundary and the writers drain before exit) or a client
/// SHUTDOWN. With QUASAR_TRACE set, the server process writes its own
/// trace on exit (EnvTraceGuard) — that session is also where the
/// serve.* counters land.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "core/shutdown.hpp"
#include "obs/trace_export.hpp"
#include "serve/server.hpp"

namespace {

using namespace quasar;

int usage() {
  std::cerr
      << "usage: quasar_serve --endpoint <unix:PATH|tcp:HOST:PORT>\n"
         "                    [--workers N] [--cache N] [--interactive-s S]\n"
         "                    [--max-job-gb G] [--scratch DIR] "
         "[--artifacts DIR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions options;
  std::string endpoint_text = "unix:/tmp/quasar-serve/quasar.sock";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        QUASAR_CHECK(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--endpoint") {
        endpoint_text = value();
      } else if (arg == "--workers") {
        options.workers = parse_int_in_range(value(), 1, 256, "--workers");
      } else if (arg == "--cache") {
        options.cache_capacity = static_cast<std::size_t>(
            parse_int_in_range(value(), 1, 1 << 20, "--cache"));
      } else if (arg == "--interactive-s") {
        options.interactive_threshold_s =
            parse_double(value(), "--interactive-s");
      } else if (arg == "--max-job-gb") {
        options.max_job_bytes = static_cast<std::uint64_t>(
            parse_double(value(), "--max-job-gb") * 1e9);
      } else if (arg == "--scratch") {
        options.scratch_dir = value();
      } else if (arg == "--artifacts") {
        options.artifact_dir = value();
      } else {
        return usage();
      }
    }
    options.endpoint = serve::parse_endpoint(endpoint_text);

    // SIGINT/SIGTERM become a graceful drain: running jobs checkpoint at
    // their next stage boundary, writers flush, then the process exits.
    install_shutdown_handler();

    obs::EnvTraceGuard trace;
    serve::JobServer server(options);
    server.start();
    std::cout << "quasar_serve listening on "
              << server.endpoint().to_string() << " (workers="
              << options.workers << ")" << std::endl;
    server.run_until_shutdown(shutdown_flag());
    const serve::JobServer::Stats stats = server.stats();
    std::cout << "quasar_serve exiting: " << stats.done << " done, "
              << stats.preemptions << " preemptions, " << stats.cache.hits
              << " cache hits" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "quasar_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
