/// \file quickstart.cpp
/// \brief Five-minute tour of the quasar public API.
///
/// Builds a small entangling circuit, simulates it with the optimized
/// kernels, inspects amplitudes and probabilities, and samples outcomes.
///
///   ./quickstart [num_qubits]
#include <cstdio>
#include <cstdlib>

#include "circuit/circuit.hpp"
#include "core/parse.hpp"
#include "core/rng.hpp"
#include "obs/trace_export.hpp"
#include "simulator/measure.hpp"
#include "simulator/simulator.hpp"

int main(int argc, char** argv) {
  using namespace quasar;
  // QUASAR_TRACE=<path> dumps a chrome://tracing timeline of the run.
  obs::EnvTraceGuard trace_guard;
  int n = 4;
  if (argc > 1) {
    try {
      n = parse_int_in_range(argv[1], 2, 26, "num_qubits");
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\nusage: %s [num_qubits in 2..26]\n", e.what(),
                   argv[0]);
      return 1;
    }
  }
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [num_qubits in 2..26]\n", argv[0]);
    return 1;
  }

  // 1. Build a circuit: GHZ preparation followed by a phase kick.
  Circuit circuit(n);
  circuit.h(0);
  for (int q = 0; q + 1 < n; ++q) circuit.cnot(q, q + 1);
  circuit.t(n - 1);

  // 2. Simulate it. The Simulator applies each gate with the SIMD
  // kernels described in the paper (Sec. 3.2/3.3).
  StateVector state(n);
  Simulator simulator(state);
  simulator.run(circuit);

  std::printf("quasar quickstart: %d qubits, %zu gates, backend=%s\n", n,
              circuit.num_gates(), simd_backend_name());
  std::printf("norm^2 = %.12f (should be 1)\n", state.norm_squared());

  // 3. Inspect the state: a GHZ state has weight only on |0..0> and
  // |1..1>.
  std::printf("|<0...0|psi>|^2 = %.6f\n", state.probability(0));
  std::printf("|<1...1|psi>|^2 = %.6f\n",
              state.probability(state.size() - 1));

  // 4. Per-qubit marginals.
  for (int q = 0; q < n; ++q) {
    std::printf("P(qubit %d = 1) = %.4f\n", q, probability_of_one(state, q));
  }

  // 5. Sample measurement outcomes.
  Rng rng(2026);
  const auto samples = sample_outcomes(state, 10, rng);
  std::printf("10 samples:");
  for (Index s : samples) std::printf(" %llu", (unsigned long long)s);
  std::printf("\n");

  // 6. Collapse one qubit and show the rest follows (GHZ correlations).
  const int outcome = measure_qubit(state, 0, rng);
  std::printf("measured qubit 0 -> %d; P(qubit %d = 1) is now %.4f\n",
              outcome, n - 1, probability_of_one(state, n - 1));
  return 0;
}
