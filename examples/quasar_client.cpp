/// \file quasar_client.cpp
/// \brief Submit circuits to a running quasar_serve daemon.
///
///   quasar_client --endpoint unix:/tmp/quasar.sock submit circuit.txt
///                 [--engine fp64|fp32] [--local L] [--kmax K]
///                 [--mode worst|full|none] [--samples N] [--seed S]
///                 [--uniform-init] [--priority auto|interactive|batch]
///                 [--transport virtual|proc] [--stall-ms MS]
///   quasar_client --endpoint ... stats | ping | shutdown
///
/// The RESULT payload (fingerprint/norm/entropy/samples) goes verbatim
/// to stdout; QUEUED/STATUS/artifact lines go to stderr. A served run
/// is therefore line-diffable against `quasar_cli run --digest` with
/// the same options.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "serve/client.hpp"

namespace {

using namespace quasar;

int usage() {
  std::cerr
      << "usage: quasar_client --endpoint <unix:PATH|tcp:HOST:PORT> "
         "<submit|stats|ping|shutdown> [circuit.txt] [options]\n"
         "  submit options: --engine fp64|fp32 --local L --kmax K\n"
         "    --mode worst|full|none --samples N --seed S --uniform-init\n"
         "    --priority auto|interactive|batch --transport virtual|proc\n"
         "    --stall-ms MS\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint_text;
  std::string command;
  std::string circuit_path;
  serve::JobSpec spec;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        QUASAR_CHECK(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--endpoint") {
        endpoint_text = value();
      } else if (arg == "--engine") {
        spec.engine = value();
      } else if (arg == "--local") {
        spec.local = parse_int_in_range(value(), 1, 62, "--local");
      } else if (arg == "--kmax") {
        spec.kmax = parse_int_in_range(value(), 1, 62, "--kmax");
      } else if (arg == "--mode") {
        spec.mode = serve::parse_specialization(value());
      } else if (arg == "--samples") {
        spec.samples = parse_int_in_range(value(), 0, 1 << 20, "--samples");
      } else if (arg == "--seed") {
        spec.seed = parse_uint64(value(), "--seed");
      } else if (arg == "--uniform-init") {
        spec.uniform_init = true;
      } else if (arg == "--priority") {
        const std::string p = value();
        spec.priority = p == "interactive"
                            ? serve::JobSpec::Priority::kInteractive
                            : p == "batch" ? serve::JobSpec::Priority::kBatch
                                           : serve::JobSpec::Priority::kAuto;
      } else if (arg == "--transport") {
        spec.transport = value() == "proc" ? TransportKind::kProc
                                           : TransportKind::kVirtual;
      } else if (arg == "--stall-ms") {
        spec.stall_ms =
            parse_int_in_range(value(), 0, 60 * 1000, "--stall-ms");
      } else if (command.empty()) {
        command = arg;
      } else if (circuit_path.empty()) {
        circuit_path = arg;
      } else {
        return usage();
      }
    }
    if (endpoint_text.empty() || command.empty()) return usage();
    serve::ServeClient client(serve::parse_endpoint(endpoint_text));

    if (command == "ping") {
      const bool ok = client.ping();
      std::cout << (ok ? "PONG" : "no reply") << "\n";
      return ok ? 0 : 1;
    }
    if (command == "stats") {
      std::cout << client.stats() << "\n";
      return 0;
    }
    if (command == "shutdown") {
      std::cout << client.shutdown_server() << "\n";
      return 0;
    }
    if (command != "submit") return usage();
    QUASAR_CHECK(!circuit_path.empty(), "submit: missing circuit file");
    std::ifstream in(circuit_path);
    QUASAR_CHECK(in.good(), "cannot open circuit file: " + circuit_path);
    std::ostringstream text;
    text << in.rdbuf();

    const serve::SubmitOutcome outcome = client.submit(
        spec, text.str(),
        [](const std::string& status) { std::cerr << status << "\n"; });
    if (!outcome.accepted) {
      std::cerr << outcome.reject_line << "\n";
      return 1;
    }
    std::cerr << outcome.queued_line << "\n";
    if (!outcome.done) {
      std::cerr << "ERROR msg=" << outcome.error << "\n";
      return 1;
    }
    for (const std::string& line : outcome.result_lines) {
      // Artifact pointers are host-local paths, not results; keep stdout
      // reserved for the diffable payload.
      if (line.rfind("metrics ", 0) == 0 || line.rfind("trace ", 0) == 0) {
        std::cerr << line << "\n";
      } else {
        std::cout << line << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "quasar_client: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
