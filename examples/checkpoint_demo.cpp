/// \file checkpoint_demo.cpp
/// \brief Kill -9 and resume: the checkpoint/restart workflow (DESIGN §10).
///
/// Runs a distributed supremacy workload under the checkpoint writer,
/// snapshotting every stage boundary. On startup it looks for a usable
/// snapshot in the checkpoint directory: if one verifies, the run resumes
/// mid-schedule from it; otherwise it starts fresh. Killing the process
/// at any point (for real, or via QUASAR_FAULT=kill_stage:<k>) and
/// re-running the same command therefore completes the run — and prints
/// the same state fingerprint and sample stream an uninterrupted run
/// prints, which is exactly what the ckpt-smoke CI job asserts.
///
/// Environment knobs (strict parses — a typo aborts, it never silently
/// becomes 0):
///   QUASAR_DEMO_ROWS/COLS  supremacy grid (default 4x5 = 20 qubits)
///   QUASAR_DEMO_DEPTH      circuit depth (default 16)
///   QUASAR_CKPT_DIR        checkpoint directory (default "ckpt_demo")
///   QUASAR_CKPT_EVERY      snapshot every k-th stage boundary (default 1)
///   QUASAR_CKPT_CODEC      shard codec, raw or lz (default raw)
///   QUASAR_FAULT           fault injection, e.g. kill_stage:3 (fault.hpp)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuit/supremacy.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "core/shutdown.hpp"
#include "obs/trace_export.hpp"
#include "runtime/distributed.hpp"
#include "serve/fingerprint.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return quasar::parse_int(value, name);
  } catch (const quasar::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
}

std::string env_str(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? value : fallback;
}

}  // namespace

int main() {
  using namespace quasar;
  obs::EnvTraceGuard trace_guard;
  // Ctrl-C / SIGTERM become a graceful drain: the run snapshots the next
  // stage boundary, the writer flushes, and the process exits cleanly —
  // re-running the command resumes from that boundary.
  install_shutdown_handler();

  SupremacyOptions options;
  options.rows = env_int("QUASAR_DEMO_ROWS", 4);
  options.cols = env_int("QUASAR_DEMO_COLS", 5);
  const int n = options.rows * options.cols;
  const int l = n - 4;  // 16 virtual ranks
  options.depth = env_int("QUASAR_DEMO_DEPTH", 16);
  options.seed = 11;
  const Circuit circuit = make_supremacy_circuit(options);

  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 5;
  const Schedule schedule = make_schedule(circuit, sched);

  ckpt::CheckpointOptions ckpt_options;
  ckpt_options.directory = env_str("QUASAR_CKPT_DIR", "ckpt_demo");
  ckpt_options.codec =
      oocore::codec_from_name(env_str("QUASAR_CKPT_CODEC", "raw"));
  std::printf("checkpoint-demo: n=%d l=%d ranks=%d stages=%zu dir=%s "
              "codec=%s\n",
              n, l, 1 << (n - l), schedule.stages.size(),
              ckpt_options.directory.c_str(),
              oocore::codec_name(ckpt_options.codec));

  DistributedSimulator sim(n, l);
  Rng rng(2017);  // the sampling stream; its state rides in every manifest

  // Resume if the directory holds a snapshot that verifies (falling back
  // past torn/corrupt generations); start fresh otherwise.
  std::size_t first_stage = 0;
  const auto snapshot =
      ckpt::CheckpointReader(ckpt_options.directory).load_latest();
  if (snapshot.has_value()) {
    first_stage = sim.resume(*snapshot, circuit, schedule, &rng);
    std::printf("resume: generation %s cursor %zu fallbacks %d\n",
                snapshot->generation.c_str(), first_stage,
                snapshot->fallbacks);
  } else {
    sim.init_uniform();
    std::printf("resume: none (fresh run)\n");
  }

  // The writer arms QUASAR_FAULT from the environment: kill_stage:<k>
  // terminates this process with exit code 137 at that stage boundary,
  // exactly like kill -9 at the worst moment the protocol allows.
  ckpt::CheckpointWriter writer(ckpt_options);
  CheckpointedRun ckpt_run;
  ckpt_run.writer = &writer;
  ckpt_run.first_stage = first_stage;
  ckpt_run.rng = &rng;
  ckpt_run.snapshot_every = env_int("QUASAR_CKPT_EVERY", 1);
  ckpt_run.stop = shutdown_flag();
  const std::size_t cursor = sim.run(circuit, schedule, ckpt_run);
  writer.close();
  if (cursor < schedule.stages.size()) {
    std::printf("interrupted: snapshot committed at stage %zu/%zu; rerun "
                "to resume\n",
                cursor, schedule.stages.size());
    return 130;
  }

  // The lines the ckpt-smoke CI job diffs between an uninterrupted run
  // and a killed-then-resumed one (serve/fingerprint.hpp formats; the
  // job server prints the same four lines for a served run).
  std::printf("%s\n",
              serve::format_fingerprint_line(serve::state_fingerprint(sim))
                  .c_str());
  std::printf("%s\n", serve::format_norm_line(sim.norm_squared()).c_str());
  std::printf("%s\n", serve::format_entropy_line(sim.entropy()).c_str());
  std::printf("%s\n", serve::format_samples_line(sim.sample(8, rng)).c_str());

  const ckpt::CheckpointStats stats = writer.stats();
  const double gb = static_cast<double>(stats.bytes_written) / 1e9;
  const double secs = static_cast<double>(stats.write_ns) / 1e9;
  std::printf("checkpoint: %llu snapshots, %.3f GB written, %.2f GB/s, "
              "%llu fault(s) injected at close\n",
              static_cast<unsigned long long>(stats.snapshots), gb,
              secs > 0.0 ? gb / secs : 0.0,
              static_cast<unsigned long long>(stats.injected_faults));
  return 0;
}
