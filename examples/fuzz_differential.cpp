/// \file fuzz_differential.cpp
/// \brief CLI driver for the differential fuzz harness (check/fuzz.hpp).
///
/// Runs seed-driven random circuits through every engine — reference
/// oracle, plain Simulator, fused+blocked, distributed across several
/// (num_local, ranks) geometries, fp32 — and compares states, amplitudes,
/// and same-seed sample draws. Any mismatch prints a self-contained,
/// minimized reproducer (seed + circuit text) and, when an output path is
/// given, also writes it to a file so CI can upload it as an artifact.
///
///   fuzz_differential [first_seed [num_seeds [reproducer_file]]]
///
/// Exits 0 when every seed agrees, 1 on any mismatch. Combine with
/// QUASAR_VALIDATE=1 to run the invariant guards inside every engine at
/// the same time (a guard trip is reported as a mismatch too), and with
/// QUASAR_FUZZ_CROSS_TRANSPORT=1 to additionally rerun every distributed
/// geometry on forked rank processes and hold the two transports to bit
/// parity (state and communication volumes).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "check/fuzz.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"

int main(int argc, char** argv) {
  using namespace quasar;

  std::uint64_t first_seed = 1;
  int num_seeds = 200;
  const char* out_path = nullptr;
  check::FuzzOptions options;
  try {
    if (const char* v = std::getenv("QUASAR_FUZZ_CROSS_TRANSPORT")) {
      options.cross_transport = parse_flag(v, "QUASAR_FUZZ_CROSS_TRANSPORT");
    }
    if (argc > 1) {
      first_seed = static_cast<std::uint64_t>(
          parse_int_in_range(argv[1], 0, 1'000'000'000, "first_seed"));
    }
    if (argc > 2) {
      num_seeds = parse_int_in_range(argv[2], 1, 1'000'000, "num_seeds");
    }
    if (argc > 3) out_path = argv[3];
    if (argc > 4) {
      throw Error("unexpected extra arguments");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(
        stderr,
        "usage: %s [first_seed [num_seeds [reproducer_file]]]\n",
        argv[0]);
    return 2;
  }

  std::cout << "fuzzing seeds [" << first_seed << ", "
            << first_seed + static_cast<std::uint64_t>(num_seeds)
            << ") across reference / simulator / fused / distributed "
               "geometries / fp32"
            << (options.cross_transport ? " / proc transport" : "") << "\n";

  const check::FuzzReport report =
      check::run_fuzz(first_seed, num_seeds, options, &std::cout);

  if (!report.mismatches.empty() && out_path != nullptr) {
    std::ofstream out(out_path);
    for (const check::Mismatch& m : report.mismatches) {
      out << check::format_reproducer(m) << "\n";
    }
    std::cout << "wrote " << report.mismatches.size()
              << " reproducer(s) to " << out_path << "\n";
  }
  return report.mismatches.empty() ? 0 : 1;
}
