/// \file distributed_demo.cpp
/// \brief Walks through the multi-node machinery of Secs. 3.4/3.5.
///
/// 1. Shows the Fig. 3 picture: a global-to-local swap is one all-to-all
///    block exchange.
/// 2. Runs the same circuit through our swap-based simulator and the
///    baseline per-gate pairwise-exchange simulator of [5]/[19] and
///    compares states (bit-identical physics) and communication volumes
///    (an order of magnitude apart — the paper's core claim).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "circuit/supremacy.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "perfmodel/machine.hpp"
#include "runtime/baseline.hpp"
#include "runtime/distributed.hpp"
#include "sched/report.hpp"
#include "serve/fingerprint.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return quasar::parse_int(value, name);
  } catch (const quasar::Error& e) {
    // A typo'd override must not silently become atoi's 0.
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
}

const char* medium_name(quasar::StorageMedium medium) {
  switch (medium) {
    case quasar::StorageMedium::kDisk: return "disk";
    case quasar::StorageMedium::kOocore: return "oocore";
    default: return "memory";
  }
}


}  // namespace

int main() {
  using namespace quasar;

  // QUASAR_TRACE=<path> dumps a chrome://tracing timeline of the run;
  // QUASAR_TRACE_METRICS=<path> dumps the flat counter/span JSON.
  obs::EnvTraceGuard trace_guard;

  // --- Fig. 3: the block-exchange picture -----------------------------
  std::printf("Fig. 3 reproduction: 2-qubit global-to-local swap on 4 "
              "ranks.\nEach rank sends its i-th quarter to rank i:\n\n");
  {
    VirtualCluster cluster(4, 2);  // 4 ranks x 4 amplitudes
    // Tag every amplitude with rank*10 + block so the motion is visible.
    for (int r = 0; r < 4; ++r) {
      for (Index i = 0; i < 4; ++i) {
        cluster.rank_data(r)[i] = Amplitude(r, static_cast<double>(i));
      }
    }
    cluster.alltoall_swap({2, 3});
    std::printf("  after the all-to-all, rank r block b holds what rank b "
                "block r held:\n");
    for (int r = 0; r < 4; ++r) {
      std::printf("  rank %d:", r);
      for (Index i = 0; i < 4; ++i) {
        const Amplitude a = cluster.rank_data(r)[i];
        std::printf("  (from rank %.0f, block %.0f)", a.real(), a.imag());
      }
      std::printf("\n");
    }
  }

  // --- Ours vs the baseline scheme ------------------------------------
  SupremacyOptions options;
  options.rows = env_int("QUASAR_DEMO_ROWS", 4);
  options.cols = env_int("QUASAR_DEMO_COLS", 5);
  options.depth = 25;
  options.seed = 3;
  const Circuit circuit = make_supremacy_circuit(options);
  const int n = options.rows * options.cols;
  // QUASAR_DEMO_GLOBALS picks g (ranks = 2^g). The default 4 = 16 ranks
  // also fits the proc transport's process cap, so the transport-smoke
  // CI job can dial it down without changing the circuit.
  const int l = n - env_int("QUASAR_DEMO_GLOBALS", 4);

  std::printf("\nWorkload: %dx%d depth-%d supremacy circuit (%zu gates), "
              "%d ranks with %d local qubits.\n",
              options.rows, options.cols, options.depth, circuit.num_gates(),
              1 << (n - l), l);

  ScheduleOptions sched;
  sched.num_local = l;
  sched.kmax = 5;
  const Schedule schedule = make_schedule(circuit, sched);
  std::printf("\n%s\n", schedule_summary(circuit, schedule).c_str());

  // QUASAR_STORAGE=memory|disk|oocore (+ QUASAR_STORAGE_DIR,
  // QUASAR_OOC_CODEC, QUASAR_OOC_SEGMENT_KB, QUASAR_OOC_IO_THREADS)
  // selects where the rank slices live; the run is bit-identical across
  // media, which the fingerprint line below lets CI assert.
  const StorageOptions storage = storage_options_from_env();
  std::printf("storage: %s", medium_name(storage.medium));
  if (storage.medium == StorageMedium::kOocore) {
    std::printf(" codec=%s segment_kb=%zu io_threads=%d",
                oocore::codec_name(storage.codec),
                storage.segment_bytes >> 10, storage.io_threads);
  }
  std::printf("\n");

  // Feed the perfmodel's per-stage predictions to the progress tracker
  // so the QUASAR_PROGRESS=1 ETA is weighted by how expensive each
  // remaining stage *should* be, not a linear stage count.
  {
    std::vector<double> predicted;
    for (const obs::StagePrediction& p :
         obs::predict_stages(circuit, schedule, host_machine(),
                             aries_dragonfly())) {
      predicted.push_back(p.total_seconds());
    }
    obs::set_progress_predictions(std::move(predicted));
  }

  DistributedSimulator ours(n, l, {}, storage);
  std::printf("transport: %s\n", ours.multiprocess() ? "proc" : "virtual");
  ours.init_basis(0);
  ours.run(circuit, schedule);
  obs::set_progress_predictions({});

  // The parity oracle for CI: bit-exact state digest + scalar summaries
  // (the shared serve/fingerprint.hpp formats — the oocore-smoke and
  // transport-smoke jobs diff these lines across storage media and
  // transports; two runs print the same fingerprint iff their
  // distributed states are bit-identical).
  using quasar::serve::state_fingerprint;
  std::printf("%s\n", quasar::serve::format_fingerprint_line(
                          state_fingerprint(ours))
                          .c_str());
  std::printf("%s\n",
              quasar::serve::format_norm_line(ours.norm_squared()).c_str());
  std::printf("%s\n",
              quasar::serve::format_entropy_line(ours.entropy()).c_str());

  // When a trace is active, join the measured stage spans against the
  // performance model (Sec. 4) and print the per-stage deltas.
  if (obs::enabled()) {
    std::printf("%s\n",
                obs::run_report(*obs::global_session(), circuit, schedule,
                                host_machine(), aries_dragonfly())
                    .c_str());
  }

  // QUASAR_DEMO_SKIP_BASELINE=1 skips the slow per-gate baseline
  // comparison (useful for CI smoke runs at larger qubit counts).
  if (env_int("QUASAR_DEMO_SKIP_BASELINE", 0) != 0) {
    const CommStats& a = ours.stats();
    std::printf("communication per rank (ours): %llu all-to-alls, %.1f MB "
                "(baseline comparison skipped)\n",
                (unsigned long long)a.alltoalls,
                a.bytes_sent_per_rank / 1e6);
    return 0;
  }

  BaselineOptions base_options;
  base_options.specialization = SpecializationMode::kWorstCase;
  BaselineSimulator baseline(n, l, base_options);
  baseline.init_basis(0);
  baseline.run(circuit);

  const double diff = ours.gather().max_abs_diff(baseline.gather());
  std::printf("state agreement with the baseline simulator: max |diff| = "
              "%.2e\n\n", diff);

  const CommStats& a = ours.stats();
  const CommStats& b = baseline.stats();
  std::printf("communication per rank (ours):     %llu all-to-alls, %.1f MB\n",
              (unsigned long long)a.alltoalls, a.bytes_sent_per_rank / 1e6);
  std::printf("communication per rank (baseline): %llu pairwise exchanges, "
              "%.1f MB\n",
              (unsigned long long)b.pairwise_exchanges,
              b.bytes_sent_per_rank / 1e6);
  if (a.bytes_sent_per_rank > 0) {
    std::printf("volume reduction: %.1fx  (the paper reports ~12.5x for "
                "depth-25 42-qubit circuits, Sec. 4.1.2)\n",
                static_cast<double>(b.bytes_sent_per_rank) /
                    static_cast<double>(a.bytes_sent_per_rank));
  }
  return 0;
}
